// Package stats provides the summary statistics used by the evaluation
// harness: running moments, sample mean/variance, and the 95% Student-t
// confidence intervals the paper reports over 10 independent simulation runs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned by summaries over empty samples.
var ErrNoData = errors.New("stats: no data")

// Running accumulates moments of a stream of observations using Welford's
// numerically stable recurrence. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddAll incorporates every observation in xs.
func (r *Running) AddAll(xs []float64) {
	for _, x := range xs {
		r.Add(x)
	}
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean, or 0 with no data.
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest observation, or 0 with no data.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 with no data.
func (r *Running) Max() float64 { return r.max }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean, or 0 with no data.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// Merge combines another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	mean := r.mean + delta*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n, r.mean, r.m2 = n, mean, m2
}

// Summary is a point estimate with a symmetric confidence half-width, i.e.
// Mean +/- HalfWidth at the stated confidence level.
type Summary struct {
	N         int
	Mean      float64
	StdDev    float64
	HalfWidth float64
}

// Lo returns the lower confidence bound.
func (s Summary) Lo() float64 { return s.Mean - s.HalfWidth }

// Hi returns the upper confidence bound.
func (s Summary) Hi() float64 { return s.Mean + s.HalfWidth }

// Summary converts the accumulated moments into a point estimate with a
// 95% Student-t confidence half-width (zero below two observations), or
// ErrNoData when nothing was accumulated.
func (r *Running) Summary() (Summary, error) {
	if r.n == 0 {
		return Summary{}, ErrNoData
	}
	s := Summary{N: r.n, Mean: r.Mean(), StdDev: r.StdDev()}
	if r.n >= 2 {
		s.HalfWidth = tCritical95(r.n-1) * r.StdErr()
	}
	return s, nil
}

// Summarize computes the sample mean and 95% Student-t confidence half-width
// of xs. With a single observation the half-width is zero.
func Summarize(xs []float64) (Summary, error) {
	var r Running
	r.AddAll(xs)
	return r.Summary()
}

// MeanOf returns the arithmetic mean of xs, or 0 for an empty slice.
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the sample median, or an error with no data.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// tTable95 holds two-sided 95% Student-t critical values for 1..30 degrees of
// freedom; beyond 30 the normal approximation 1.96 is used. The df=9 entry
// (2.262) is the one exercised by the paper's 10-run experiments.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom.
func tCritical95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	return 1.96
}

// JainIndex returns Jain's fairness index of xs:
// (sum x)^2 / (n * sum x^2), which is 1/n when one element holds
// everything and 1 when all elements are equal. Non-positive inputs are
// allowed; an all-zero vector returns 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// JainAccumulator accumulates the sufficient statistics of Jain's fairness
// index (count, sum, sum of squares) so the index can be folded across
// shards: each shard Adds its observations in ascending user order, and the
// per-shard accumulators are Merged in ascending shard order after the
// join. Merging into a zero accumulator copies the operand exactly, so a
// single-shard fold reproduces JainIndex bit for bit. The zero value is
// ready to use.
type JainAccumulator struct {
	n     int
	sum   float64
	sumSq float64
}

// Add incorporates one observation.
func (a *JainAccumulator) Add(x float64) {
	a.n++
	a.sum += x
	a.sumSq += x * x
}

// Merge combines another accumulator into a. Fold accumulators in ascending
// shard order for deterministic results.
func (a *JainAccumulator) Merge(o *JainAccumulator) {
	if o.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *o
		return
	}
	a.n += o.n
	a.sum += o.sum
	a.sumSq += o.sumSq
}

// N returns the number of observations.
func (a *JainAccumulator) N() int { return a.n }

// Index returns Jain's fairness index of the accumulated observations,
// with the same conventions as JainIndex (0 for no data or an all-zero
// vector) and the identical final arithmetic, so a fold over a single
// shard is bitwise-equal to the direct computation.
func (a *JainAccumulator) Index() float64 {
	if a.n == 0 {
		return 0
	}
	if a.sumSq == 0 {
		return 0
	}
	return a.sum * a.sum / (float64(a.n) * a.sumSq)
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs by linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}
