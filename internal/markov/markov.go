// Package markov implements the two-state discrete-time Markov process that
// models primary-user occupancy of each licensed channel (paper §III-A).
//
// A channel is either Idle (state 0) or Busy (state 1). P01 is the
// idle-to-busy transition probability and P10 the busy-to-idle probability.
// The long-run fraction of busy slots — the channel utilization of eq. (1) —
// is eta = P01 / (P01 + P10).
package markov

import (
	"errors"
	"fmt"
	"math"

	"femtocr/internal/rng"
)

// State is the occupancy of a channel in one time slot.
type State int

// Channel occupancy states. The paper encodes idle as 0 and busy as 1; we
// keep that encoding so State values can index probability tables directly.
const (
	Idle State = 0
	Busy State = 1
)

// String returns "idle" or "busy".
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Busy:
		return "busy"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Valid reports whether s is one of the two defined states.
func (s State) Valid() bool { return s == Idle || s == Busy }

// ErrInvalidProbability is returned when a transition probability lies
// outside [0, 1].
var ErrInvalidProbability = errors.New("markov: transition probability outside [0, 1]")

// ErrDegenerateChain is returned when both transition probabilities are zero,
// which leaves the stationary distribution undefined.
var ErrDegenerateChain = errors.New("markov: P01 + P10 must be positive")

// Chain is a two-state discrete-time Markov chain.
type Chain struct {
	p01 float64 // Pr{next = Busy | current = Idle}
	p10 float64 // Pr{next = Idle | current = Busy}
}

// NewChain builds a chain from the idle-to-busy and busy-to-idle transition
// probabilities.
func NewChain(p01, p10 float64) (Chain, error) {
	if p01 < 0 || p01 > 1 || p10 < 0 || p10 > 1 {
		return Chain{}, fmt.Errorf("%w: P01=%v P10=%v", ErrInvalidProbability, p01, p10)
	}
	if p01+p10 == 0 {
		return Chain{}, ErrDegenerateChain
	}
	return Chain{p01: p01, p10: p10}, nil
}

// FromUtilization builds a chain with the target utilization eta (eq. 1)
// keeping the busy-to-idle probability p10 fixed. This is how the evaluation
// sweeps eta in Fig. 4(c) and Fig. 6(a) without changing the busy-period
// structure. It requires 0 <= eta < 1 and the implied P01 to stay in [0, 1].
func FromUtilization(eta, p10 float64) (Chain, error) {
	if eta < 0 || eta >= 1 {
		return Chain{}, fmt.Errorf("%w: eta=%v must be in [0, 1)", ErrInvalidProbability, eta)
	}
	// eta = p01/(p01+p10)  =>  p01 = eta*p10/(1-eta).
	p01 := eta * p10 / (1 - eta)
	if p01 > 1 {
		return Chain{}, fmt.Errorf("%w: eta=%v with P10=%v needs P01=%v > 1",
			ErrInvalidProbability, eta, p10, p01)
	}
	return NewChain(p01, p10)
}

// P01 returns the idle-to-busy transition probability.
func (c Chain) P01() float64 { return c.p01 }

// P10 returns the busy-to-idle transition probability.
func (c Chain) P10() float64 { return c.p10 }

// Utilization returns the stationary busy probability eta = P01/(P01+P10)
// of eq. (1).
func (c Chain) Utilization() float64 { return c.p01 / (c.p01 + c.p10) }

// Stationary returns the stationary distribution (piIdle, piBusy).
func (c Chain) Stationary() (idle, busy float64) {
	busy = c.Utilization()
	return 1 - busy, busy
}

// Next samples the state following cur using stream s.
func (c Chain) Next(cur State, s *rng.Stream) State {
	switch cur {
	case Idle:
		if s.Bernoulli(c.p01) {
			return Busy
		}
		return Idle
	default:
		if s.Bernoulli(c.p10) {
			return Idle
		}
		return Busy
	}
}

// SampleStationary draws an initial state from the stationary distribution.
func (c Chain) SampleStationary(s *rng.Stream) State {
	if s.Bernoulli(c.Utilization()) {
		return Busy
	}
	return Idle
}

// MeanIdleRun returns the expected length of an idle period in slots
// (geometric with parameter P01).
func (c Chain) MeanIdleRun() float64 {
	if c.p01 == 0 {
		return 0 // never leaves idle; callers treat 0 as "infinite"
	}
	return 1 / c.p01
}

// MeanBusyRun returns the expected length of a busy period in slots
// (geometric with parameter P10).
func (c Chain) MeanBusyRun() float64 {
	if c.p10 == 0 {
		return 0
	}
	return 1 / c.p10
}

// TransitionMatrix returns the 2x2 row-stochastic transition matrix
// [ [P00, P01], [P10, P11] ].
func (c Chain) TransitionMatrix() [2][2]float64 {
	return [2][2]float64{
		{1 - c.p01, c.p01},
		{c.p10, 1 - c.p10},
	}
}

// NStepMatrix returns the n-step transition matrix using the closed form for
// two-state chains: P^n = Pi + (1-p01-p10)^n * (I - Pi), where Pi has the
// stationary distribution in both rows.
func (c Chain) NStepMatrix(n int) [2][2]float64 {
	if n <= 0 {
		return [2][2]float64{{1, 0}, {0, 1}}
	}
	idle, busy := c.Stationary()
	r := 1.0
	base := 1 - c.p01 - c.p10
	for i := 0; i < n; i++ {
		r *= base
	}
	return [2][2]float64{
		{idle + r*(1-idle), busy - r*busy},
		{idle - r*idle, busy + r*(1-busy)},
	}
}

// Simulate generates a trajectory of n states starting from the stationary
// distribution.
func (c Chain) Simulate(n int, s *rng.Stream) []State {
	if n <= 0 {
		return nil
	}
	out := make([]State, n)
	out[0] = c.SampleStationary(s)
	for i := 1; i < n; i++ {
		out[i] = c.Next(out[i-1], s)
	}
	return out
}

// Fit estimates a Chain from an observed trajectory by maximum likelihood
// (transition counting). It needs at least one observed departure from each
// state; otherwise it returns ErrDegenerateChain.
func Fit(trace []State) (Chain, error) {
	var n0, n01, n1, n10 int
	for i := 1; i < len(trace); i++ {
		switch trace[i-1] {
		case Idle:
			n0++
			if trace[i] == Busy {
				n01++
			}
		case Busy:
			n1++
			if trace[i] == Idle {
				n10++
			}
		}
	}
	if n0 == 0 || n1 == 0 {
		return Chain{}, fmt.Errorf("%w: trace never visits both states", ErrDegenerateChain)
	}
	return NewChain(float64(n01)/float64(n0), float64(n10)/float64(n1))
}

// EmpiricalUtilization returns the busy fraction of a trace, the finite-T
// version of eq. (1). An empty trace yields 0.
func EmpiricalUtilization(trace []State) float64 {
	if len(trace) == 0 {
		return 0
	}
	busy := 0
	for _, st := range trace {
		if st == Busy {
			busy++
		}
	}
	return float64(busy) / float64(len(trace))
}

// Autocorrelation returns the lag-k autocorrelation of the stationary
// occupancy process: (1 - P01 - P10)^k. It quantifies how informative past
// observations are about the current state — the quantity the belief
// filter of internal/belief exploits.
func (c Chain) Autocorrelation(k int) float64 {
	if k < 0 {
		k = -k
	}
	r := 1.0
	base := 1 - c.p01 - c.p10
	for i := 0; i < k; i++ {
		r *= base
	}
	return r
}

// MixingTime returns the number of slots after which the autocorrelation
// falls below the threshold (0 for already-below at lag 0 is impossible:
// lag 0 is 1). A non-positive or >= 1 threshold returns 0. Chains with
// |1 - P01 - P10| = 0 mix in one step.
func (c Chain) MixingTime(threshold float64) int {
	if threshold <= 0 || threshold >= 1 {
		return 0
	}
	base := math.Abs(1 - c.p01 - c.p10)
	if base == 0 {
		return 1
	}
	if base >= 1 {
		return math.MaxInt32 // periodic or absorbing: never mixes
	}
	return int(math.Ceil(math.Log(threshold) / math.Log(base)))
}
