package markov_test

import (
	"fmt"

	"femtocr/internal/markov"
	"femtocr/internal/rng"
)

// The paper's default licensed-channel model: P01 = 0.4, P10 = 0.3,
// giving utilization eta = 0.4/0.7 (eq. 1).
func ExampleChain_Utilization() {
	chain, err := markov.NewChain(0.4, 0.3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("eta = %.4f\n", chain.Utilization())
	fmt.Printf("mean idle period = %.2f slots\n", chain.MeanIdleRun())
	fmt.Printf("mean busy period = %.2f slots\n", chain.MeanBusyRun())
	// Output:
	// eta = 0.5714
	// mean idle period = 2.50 slots
	// mean busy period = 3.33 slots
}

// Retuning a channel to a target utilization, as the Fig. 4(c) sweep does.
func ExampleFromUtilization() {
	chain, err := markov.FromUtilization(0.3, 0.3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("P01 = %.4f, P10 = %.4f, eta = %.2f\n", chain.P01(), chain.P10(), chain.Utilization())
	// Output:
	// P01 = 0.1286, P10 = 0.3000, eta = 0.30
}

// Simulating occupancy and recovering the parameters by maximum likelihood.
func ExampleFit() {
	chain, _ := markov.NewChain(0.4, 0.3)
	trace := chain.Simulate(200000, rng.New(1))
	fitted, err := markov.Fit(trace)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fitted P01 within 0.02: %v\n", diff(fitted.P01(), 0.4) < 0.02)
	fmt.Printf("fitted P10 within 0.02: %v\n", diff(fitted.P10(), 0.3) < 0.02)
	// Output:
	// fitted P01 within 0.02: true
	// fitted P10 within 0.02: true
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
