package markov

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"femtocr/internal/rng"
)

func mustChain(t *testing.T, p01, p10 float64) Chain {
	t.Helper()
	c, err := NewChain(p01, p10)
	if err != nil {
		t.Fatalf("NewChain(%v, %v): %v", p01, p10, err)
	}
	return c
}

func TestNewChainValidation(t *testing.T) {
	cases := []struct {
		p01, p10 float64
		wantErr  error
	}{
		{0.4, 0.3, nil},
		{0, 1, nil},
		{1, 0, nil},
		{-0.1, 0.3, ErrInvalidProbability},
		{0.4, 1.1, ErrInvalidProbability},
		{0, 0, ErrDegenerateChain},
	}
	for _, c := range cases {
		_, err := NewChain(c.p01, c.p10)
		if c.wantErr == nil && err != nil {
			t.Errorf("NewChain(%v,%v) unexpected error %v", c.p01, c.p10, err)
		}
		if c.wantErr != nil && !errors.Is(err, c.wantErr) {
			t.Errorf("NewChain(%v,%v) err = %v, want %v", c.p01, c.p10, err, c.wantErr)
		}
	}
}

func TestPaperUtilization(t *testing.T) {
	// The paper's default: P01 = 0.4, P10 = 0.3 => eta = 0.4/0.7.
	c := mustChain(t, 0.4, 0.3)
	want := 0.4 / 0.7
	if got := c.Utilization(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Utilization = %v, want %v", got, want)
	}
	idle, busy := c.Stationary()
	if math.Abs(idle+busy-1) > 1e-12 {
		t.Fatalf("stationary distribution does not sum to 1: %v + %v", idle, busy)
	}
}

func TestFromUtilization(t *testing.T) {
	for _, eta := range []float64{0.3, 0.4, 0.5, 0.6, 0.7} {
		c, err := FromUtilization(eta, 0.3)
		if err != nil {
			t.Fatalf("FromUtilization(%v, 0.3): %v", eta, err)
		}
		if got := c.Utilization(); math.Abs(got-eta) > 1e-12 {
			t.Errorf("eta = %v, got %v", eta, got)
		}
		if c.P10() != 0.3 {
			t.Errorf("P10 changed: %v", c.P10())
		}
	}
}

func TestFromUtilizationRejectsInfeasible(t *testing.T) {
	// eta = 0.9 with p10 = 0.3 needs p01 = 2.7 > 1.
	if _, err := FromUtilization(0.9, 0.3); !errors.Is(err, ErrInvalidProbability) {
		t.Fatalf("err = %v, want ErrInvalidProbability", err)
	}
	if _, err := FromUtilization(1.0, 0.3); !errors.Is(err, ErrInvalidProbability) {
		t.Fatalf("eta=1 err = %v, want ErrInvalidProbability", err)
	}
	if _, err := FromUtilization(-0.1, 0.3); !errors.Is(err, ErrInvalidProbability) {
		t.Fatalf("eta<0 err = %v, want ErrInvalidProbability", err)
	}
}

func TestStateString(t *testing.T) {
	if Idle.String() != "idle" || Busy.String() != "busy" {
		t.Fatal("state strings wrong")
	}
	if State(7).String() != "State(7)" {
		t.Fatalf("unknown state string = %q", State(7).String())
	}
	if !Idle.Valid() || !Busy.Valid() || State(2).Valid() {
		t.Fatal("Valid() wrong")
	}
}

func TestSimulateMatchesStationary(t *testing.T) {
	c := mustChain(t, 0.4, 0.3)
	s := rng.New(1)
	trace := c.Simulate(200000, s)
	got := EmpiricalUtilization(trace)
	if want := c.Utilization(); math.Abs(got-want) > 0.01 {
		t.Fatalf("empirical utilization %v, want ~%v", got, want)
	}
}

func TestMeanRunLengths(t *testing.T) {
	c := mustChain(t, 0.4, 0.25)
	if got := c.MeanIdleRun(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("MeanIdleRun = %v, want 2.5", got)
	}
	if got := c.MeanBusyRun(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("MeanBusyRun = %v, want 4", got)
	}
	// Empirical check on sojourn lengths.
	s := rng.New(2)
	trace := c.Simulate(300000, s)
	var idleRuns, idleTotal int
	run := 0
	for _, st := range trace {
		if st == Idle {
			run++
		} else if run > 0 {
			idleRuns++
			idleTotal += run
			run = 0
		}
	}
	got := float64(idleTotal) / float64(idleRuns)
	if math.Abs(got-2.5) > 0.05 {
		t.Fatalf("empirical idle run %v, want ~2.5", got)
	}
}

func TestMeanRunLengthsDegenerateEdges(t *testing.T) {
	c := mustChain(t, 0, 0.3) // never leaves idle
	if c.MeanIdleRun() != 0 {
		t.Fatal("MeanIdleRun for absorbing idle should be 0 sentinel")
	}
	c2 := mustChain(t, 0.3, 0)
	if c2.MeanBusyRun() != 0 {
		t.Fatal("MeanBusyRun for absorbing busy should be 0 sentinel")
	}
}

func TestTransitionMatrixRowStochastic(t *testing.T) {
	err := quick.Check(func(a, b uint8) bool {
		p01 := float64(a%101) / 100
		p10 := float64(b%101) / 100
		if p01+p10 == 0 {
			return true
		}
		c, err := NewChain(p01, p10)
		if err != nil {
			return false
		}
		m := c.TransitionMatrix()
		return math.Abs(m[0][0]+m[0][1]-1) < 1e-12 &&
			math.Abs(m[1][0]+m[1][1]-1) < 1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNStepMatrixConvergesToStationary(t *testing.T) {
	c := mustChain(t, 0.4, 0.3)
	m := c.NStepMatrix(200)
	idle, busy := c.Stationary()
	for row := 0; row < 2; row++ {
		if math.Abs(m[row][0]-idle) > 1e-9 || math.Abs(m[row][1]-busy) > 1e-9 {
			t.Fatalf("row %d of P^200 = %v, want (%v, %v)", row, m[row], idle, busy)
		}
	}
}

func TestNStepMatrixIdentityAtZero(t *testing.T) {
	c := mustChain(t, 0.4, 0.3)
	m := c.NStepMatrix(0)
	if m != [2][2]float64{{1, 0}, {0, 1}} {
		t.Fatalf("P^0 = %v, want identity", m)
	}
}

func TestNStepMatrixMatchesPower(t *testing.T) {
	c := mustChain(t, 0.35, 0.2)
	// Compute P^5 by repeated multiplication and compare.
	p := c.TransitionMatrix()
	acc := [2][2]float64{{1, 0}, {0, 1}}
	for i := 0; i < 5; i++ {
		var next [2][2]float64
		for r := 0; r < 2; r++ {
			for cc := 0; cc < 2; cc++ {
				for k := 0; k < 2; k++ {
					next[r][cc] += acc[r][k] * p[k][cc]
				}
			}
		}
		acc = next
	}
	m := c.NStepMatrix(5)
	for r := 0; r < 2; r++ {
		for cc := 0; cc < 2; cc++ {
			if math.Abs(m[r][cc]-acc[r][cc]) > 1e-12 {
				t.Fatalf("NStepMatrix(5)[%d][%d] = %v, want %v", r, cc, m[r][cc], acc[r][cc])
			}
		}
	}
}

func TestFitRecoversParameters(t *testing.T) {
	c := mustChain(t, 0.4, 0.3)
	s := rng.New(3)
	trace := c.Simulate(500000, s)
	got, err := Fit(trace)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.P01()-0.4) > 0.01 || math.Abs(got.P10()-0.3) > 0.01 {
		t.Fatalf("Fit = (%v, %v), want ~(0.4, 0.3)", got.P01(), got.P10())
	}
}

func TestFitDegenerateTrace(t *testing.T) {
	if _, err := Fit([]State{Idle, Idle, Idle}); !errors.Is(err, ErrDegenerateChain) {
		t.Fatalf("err = %v, want ErrDegenerateChain", err)
	}
	if _, err := Fit(nil); !errors.Is(err, ErrDegenerateChain) {
		t.Fatalf("err = %v, want ErrDegenerateChain", err)
	}
}

func TestSimulateEmpty(t *testing.T) {
	c := mustChain(t, 0.4, 0.3)
	if got := c.Simulate(0, rng.New(1)); got != nil {
		t.Fatalf("Simulate(0) = %v, want nil", got)
	}
}

func TestNextDeterministicEdges(t *testing.T) {
	s := rng.New(1)
	alwaysFlip := mustChain(t, 1, 1)
	if alwaysFlip.Next(Idle, s) != Busy || alwaysFlip.Next(Busy, s) != Idle {
		t.Fatal("chain with P01=P10=1 must alternate")
	}
	sticky := mustChain(t, 0, 1)
	if sticky.Next(Idle, s) != Idle {
		t.Fatal("chain with P01=0 must stay idle")
	}
}

func TestUtilizationIsStationaryProperty(t *testing.T) {
	// pi * P = pi for the stationary vector.
	err := quick.Check(func(a, b uint8) bool {
		p01 := float64(a%100+1) / 101
		p10 := float64(b%100+1) / 101
		c, err := NewChain(p01, p10)
		if err != nil {
			return false
		}
		idle, busy := c.Stationary()
		m := c.TransitionMatrix()
		nextIdle := idle*m[0][0] + busy*m[1][0]
		nextBusy := idle*m[0][1] + busy*m[1][1]
		return math.Abs(nextIdle-idle) < 1e-12 && math.Abs(nextBusy-busy) < 1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	c := mustChain(t, 0.4, 0.3)
	if got := c.Autocorrelation(0); got != 1 {
		t.Fatalf("lag 0 = %v", got)
	}
	if got := c.Autocorrelation(1); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("lag 1 = %v, want 1-0.7=0.3", got)
	}
	if got := c.Autocorrelation(-2); math.Abs(got-0.09) > 1e-12 {
		t.Fatalf("lag -2 = %v, want 0.09 (symmetric)", got)
	}
	// Empirical check: corr(S_t, S_{t+1}) over a long trace.
	s := rng.New(21)
	trace := c.Simulate(300000, s)
	var sx, sxx, sxy float64
	n := float64(len(trace) - 1)
	for i := 0; i+1 < len(trace); i++ {
		x, y := float64(trace[i]), float64(trace[i+1])
		sx += x
		sxx += x * x
		sxy += x * y
	}
	mean := sx / n
	variance := sxx/n - mean*mean
	cov := sxy/n - mean*mean
	if got := cov / variance; math.Abs(got-0.3) > 0.02 {
		t.Fatalf("empirical lag-1 autocorrelation %v, want ~0.3", got)
	}
}

func TestMixingTime(t *testing.T) {
	fast := mustChain(t, 0.4, 0.3) // base 0.3
	slow := mustChain(t, 0.04, 0.03)
	if fast.MixingTime(0.01) >= slow.MixingTime(0.01) {
		t.Fatalf("fast chain mixes slower: %d vs %d",
			fast.MixingTime(0.01), slow.MixingTime(0.01))
	}
	if got := fast.MixingTime(0.3); got != 1 {
		t.Fatalf("threshold at base: %d, want 1", got)
	}
	if fast.MixingTime(0) != 0 || fast.MixingTime(1.5) != 0 {
		t.Fatal("degenerate thresholds")
	}
	oneStep := mustChain(t, 0.5, 0.5) // base 0: mixes instantly
	if oneStep.MixingTime(0.01) != 1 {
		t.Fatal("base-0 chain mixing time")
	}
	periodic := mustChain(t, 1, 1) // base -1: alternates forever
	if periodic.MixingTime(0.01) < 1<<30 {
		t.Fatal("periodic chain should never mix")
	}
}
