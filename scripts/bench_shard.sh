#!/usr/bin/env bash
# Benchmark the sharded metro engine and record the result as BENCH JSON
# (format documented in EXPERIMENTS.md). Runs one fixed Poisson metro
# topology through `femtosim -scenario metro` at shard groupings 1, 2, 4
# and 8 and emits BENCH_shard.json with the per-task ns accounting of each
# grouping plus a cross-check that every grouping folded to the identical
# PSNR.
#
# The sharded fold is bitwise-deterministic for any -shards/-workers
# setting, so the interesting numbers are the ns bookkeeping, not the wall
# clock: on a 1-CPU container wall-clock speedup is pinned at ~1.0 no
# matter how many workers run, but sum_task_ns (serialized work) and
# max_task_ns (critical path) are schedule-arithmetic, and their ratio —
# ideal_speedup — is the speedup a machine with enough CPUs would reach at
# that grouping. Near-linear scaling shows up as ideal_speedup tracking
# the grouping count until the largest shard dominates the critical path.
# The JSON records "cpus"/"gomaxprocs" so readers can tell the cap from a
# regression.
#
# Usage: scripts/bench_shard.sh [output.json]
# Env:   FEMTOCR_METRO_FBS   (default 400)  femtocells in the scatter
#        FEMTOCR_METRO_USERS (default 2)    generated streams per cell
#        FEMTOCR_METRO_GOPS  (default 1)    GOP horizon per run
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_shard.json}"
fbs="${FEMTOCR_METRO_FBS:-400}"
users="${FEMTOCR_METRO_USERS:-2}"
gops="${FEMTOCR_METRO_GOPS:-1}"

bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/femtosim" ./cmd/femtosim

stats=""
for groups in 1 2 4 8; do
    line=$("$bin/femtosim" -scenario metro -metro-fbs "$fbs" \
        -metro-users "$users" -gops "$gops" -seed 1 \
        -shards "$groups" | grep '^SHARDSTATS ')
    echo "$line"
    stats+="$line"$'\n'
done

printf '%s' "$stats" | awk -v out="$out" -v fbs="$fbs" -v users="$users" \
    -v gops="$gops" -v cpus="$(nproc)" \
    -v gomaxprocs="${GOMAXPROCS:-$(nproc)}" '
{
    n++
    for (i = 2; i <= NF; i++) {
        split($i, kv, "=")
        v[n, kv[1]] = kv[2]
    }
}
END {
    if (n == 0) {
        print "bench_shard.sh: no SHARDSTATS rows" > "/dev/stderr"
        exit 1
    }
    identical = "true"
    for (r = 2; r <= n; r++)
        if (v[r, "psnr"] != v[1, "psnr"]) identical = "false"
    printf "{\n" > out
    printf "  \"benchmark\": \"metro-sharded\",\n" > out
    printf "  \"package\": \"femtocr/cmd/femtosim\",\n" > out
    printf "  \"topology\": {\"layout\": \"poisson\", \"fbs\": %d, \"users_per_fbs\": %d, \"gops\": %d, \"seed\": 1},\n", fbs, users, gops > out
    printf "  \"cpus\": %d,\n", cpus > out
    printf "  \"gomaxprocs\": %d,\n", gomaxprocs > out
    printf "  \"results\": [\n" > out
    for (r = 1; r <= n; r++) {
        # ns counts overflow the 32-bit %d of mawk; print as exact floats.
        printf "    {\"groups\": %d, \"workers\": %d, \"wall_ns\": %.0f, \"sum_task_ns\": %.0f, \"max_task_ns\": %.0f, \"ideal_speedup\": %s}%s\n", \
            v[r, "groups"], v[r, "workers"], v[r, "wall_ns"], \
            v[r, "sum_task_ns"], v[r, "max_task_ns"], \
            v[r, "ideal_speedup"], (r < n ? "," : "") > out
    }
    printf "  ],\n" > out
    printf "  \"psnr\": %s,\n", v[1, "psnr"] > out
    printf "  \"psnr_identical_across_groupings\": %s\n", identical > out
    printf "}\n" > out
    if (identical != "true") {
        print "bench_shard.sh: PSNR diverged across shard groupings" > "/dev/stderr"
        exit 1
    }
}
'
echo "wrote $out"
