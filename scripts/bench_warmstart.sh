#!/usr/bin/env bash
# Benchmark the cross-slot warm-started dual solves and record the result
# as BENCH JSON (format documented in EXPERIMENTS.md). Runs the paper's
# single-FBS scenario through `femtosim -warmstats` for both solvers
# (price equilibrium and dual subgradient), cold and warm, and emits
# BENCH_warmstart.json with each configuration's per-slot iteration
# statistics plus the two gates of the warm-start contract:
#
#   * correctness — the warm run's full-precision PSNR must equal the cold
#     run's bitwise, per solver (the repair step guarantees identical
#     allocations, so any divergence is a warm-path bug);
#   * budget — the dual solver's median iterations-per-slot must drop by
#     at least 2x warm vs cold.
#
# Iteration counts are schedule-arithmetic (deterministic per seed), not
# wall clock, so the numbers are stable on a 1-CPU container; wall-clock
# claims belong to bench_hotpath.sh's min-of-N benchstat runs.
#
# Usage: scripts/bench_warmstart.sh [output.json]
# Env:   FEMTOCR_WARM_GOPS (default 20) GOP horizon per run
#        FEMTOCR_WARM_SEED (default 1)  base seed
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_warmstart.json}"
gops="${FEMTOCR_WARM_GOPS:-20}"
seed="${FEMTOCR_WARM_SEED:-1}"

bin=$(mktemp -d)
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/femtosim" ./cmd/femtosim

stats=""
for solver_flag in "" "-dual"; do
    for warm_flag in "" "-warmstart"; do
        # shellcheck disable=SC2086 # empty flags must expand to nothing
        line=$("$bin/femtosim" -scenario single -runs 1 -gops "$gops" \
            -seed "$seed" -warmstats $solver_flag $warm_flag |
            grep '^WARMSTATS ')
        echo "$line"
        stats+="$line"$'\n'
    done
done

printf '%s' "$stats" | awk -v out="$out" -v gops="$gops" -v seed="$seed" '
{
    n++
    for (i = 2; i <= NF; i++) {
        split($i, kv, "=")
        v[n, kv[1]] = kv[2]
    }
    key[v[n, "solver"] "/" v[n, "mode"]] = n
}
END {
    if (n != 4) {
        print "bench_warmstart.sh: expected 4 WARMSTATS rows, got " n > "/dev/stderr"
        exit 1
    }
    fail = ""
    split("equilibrium dual", solvers, " ")
    for (si = 1; si <= 2; si++) {
        s = solvers[si]
        c = key[s "/cold"]; w = key[s "/warm"]
        if (!c || !w) {
            print "bench_warmstart.sh: missing cold/warm row for " s > "/dev/stderr"
            exit 1
        }
        if (v[w, "psnr"] != v[c, "psnr"])
            fail = fail "PSNR diverged for " s ": warm=" v[w, "psnr"] " cold=" v[c, "psnr"] "\n"
        ratio[s] = (v[w, "p50"] > 0) ? v[c, "p50"] / v[w, "p50"] : 0
    }
    if (ratio["dual"] < 2)
        fail = fail sprintf("dual p50 speedup %.2fx below the 2x gate\n", ratio["dual"])
    printf "{\n" > out
    printf "  \"benchmark\": \"warmstart-iterations\",\n" > out
    printf "  \"package\": \"femtocr/cmd/femtosim\",\n" > out
    printf "  \"scenario\": {\"name\": \"single\", \"gops\": %d, \"seed\": %d},\n", gops, seed > out
    printf "  \"results\": [\n" > out
    for (r = 1; r <= n; r++) {
        printf "    {\"solver\": \"%s\", \"mode\": \"%s\", \"solves\": %d, \"warm_solves\": %d, \"trivial\": %d, \"restarts\": %d, \"total_iters\": %d, \"mean_iters\": %s, \"p50\": %d, \"p90\": %d, \"p99\": %d, \"max\": %d}%s\n", \
            v[r, "solver"], v[r, "mode"], v[r, "solves"], v[r, "warm_solves"], \
            v[r, "trivial"], v[r, "restarts"], v[r, "total_iters"], \
            v[r, "mean_iters"], v[r, "p50"], v[r, "p90"], v[r, "p99"], \
            v[r, "max"], (r < n ? "," : "") > out
    }
    printf "  ],\n" > out
    printf "  \"p50_speedup\": {\"equilibrium\": %.3f, \"dual\": %.3f},\n", ratio["equilibrium"], ratio["dual"] > out
    printf "  \"psnr\": %s,\n", v[1, "psnr"] > out
    printf "  \"psnr_identical_warm_vs_cold\": %s\n", (fail == "" || index(fail, "PSNR") == 0) ? "true" : "false" > out
    printf "}\n" > out
    if (fail != "") {
        printf "bench_warmstart.sh: %s", fail > "/dev/stderr"
        exit 1
    }
}
'
echo "wrote $out"
