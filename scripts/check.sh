#!/usr/bin/env bash
# Tier-1 verification gate for femtocr. CI runs this on every push/PR; run
# it locally before merging. Steps:
#
#   1. gofmt -s     — formatting (and simplification) drift fails the gate
#   2. go vet       — the compiler-adjacent standard checks
#   3. go build     — the whole module must compile
#   4. femtovet     — the domain-aware analyzer suite (determinism, units,
#                     RNG provenance, index domains, probability ranges,
#                     float comparisons, dropped errors), built once and run
#                     against the checked-in baseline
#   5. escape_check — advisory: diffs the compiler's -gcflags=-m escape
#                     analysis over the //femtovet:hotpath packages against
#                     scripts/escape_expect.txt (drift warns, never fails)
#   6. determinism  — the parallel-replication regression: figures must be
#                     byte-identical for workers=1, 4, and GOMAXPROCS, run
#                     under the race detector (named explicitly so a test
#                     rename can't silently drop the gate)
#   7. go test -race — all tests under the race detector
#   8. metro smoke   — a quick-scale generated metro through the sharded
#                     engine end to end (femtosim -scenario metro)
#   9. warm smoke    — a warm-started dual run through femtosim must report
#                     the bitwise-identical full-precision PSNR as the cold
#                     run (the warm-start correctness contract, end to end)
#
# Both -race steps run with GOMAXPROCS=4: the CI container exposes a single
# CPU (see the 1-CPU caveat the bench scripts record in BENCH_*.json), and
# with GOMAXPROCS=1 goroutines barely interleave, so the race detector would
# exercise almost none of the schedules it exists to catch. The override is
# echoed into the CI log so a run's effective parallelism is auditable.
#
# Opt-in extras:
#   FEMTOCR_FUZZ=1  — also run short fuzz smoke passes (-fuzztime=10s) over
#                     the core solver fuzz targets.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt -s"
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting (gofmt -s -w):" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> femtovet"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/femtovet" ./cmd/femtovet
"$tmp/femtovet" -baseline femtovet.baseline.json ./...

echo "==> escape_check (advisory gcflags=-m cross-check of the hotpath contract)"
./scripts/escape_check.sh

echo "==> parallel determinism (workers=1/4/GOMAXPROCS, byte-identical figures)"
echo "    GOMAXPROCS=4 (forced: 1-CPU runners don't interleave goroutines)"
GOMAXPROCS=4 go test -race -run '^(TestParallelDeterminism|TestTopologyStudyDeterminism)$' \
    -count=1 ./internal/experiments

echo "==> go test -race"
echo "    GOMAXPROCS=4 (forced: 1-CPU runners don't interleave goroutines)"
GOMAXPROCS=4 go test -race ./...

echo "==> metro smoke (sharded engine end to end through femtosim)"
go run ./cmd/femtosim -scenario metro -metro-fbs 24 -metro-users 2 \
    -gops 1 -shards 4 >/dev/null

echo "==> warm-start smoke (warm PSNR must equal cold bitwise)"
warm_psnr=$(go run ./cmd/femtosim -scenario single -dual -warmstart -warmstats \
    -gops 4 | awk '/^WARMSTATS/ {for (i = 2; i <= NF; i++) {
        split($i, kv, "="); if (kv[1] == "psnr") print kv[2] }}')
cold_psnr=$(go run ./cmd/femtosim -scenario single -dual -warmstats \
    -gops 4 | awk '/^WARMSTATS/ {for (i = 2; i <= NF; i++) {
        split($i, kv, "="); if (kv[1] == "psnr") print kv[2] }}')
if [ -z "$warm_psnr" ] || [ "$warm_psnr" != "$cold_psnr" ]; then
    echo "warm-start smoke: warm PSNR '$warm_psnr' != cold PSNR '$cold_psnr'" >&2
    exit 1
fi

if [ -n "${FEMTOCR_FUZZ:-}" ]; then
    echo "==> fuzz smoke (FEMTOCR_FUZZ set)"
    go test -run='^$' -fuzz='^FuzzWaterfill$' -fuzztime=10s ./internal/core
    go test -run='^$' -fuzz='^FuzzGreedyChannels$' -fuzztime=10s ./internal/core
fi

echo "check.sh: all gates passed"
