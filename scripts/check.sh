#!/usr/bin/env bash
# Tier-1 verification gate for femtocr. CI runs this on every push/PR; run
# it locally before merging. Steps:
#
#   1. gofmt        — formatting drift fails the gate
#   2. go vet       — the compiler-adjacent standard checks
#   3. go build     — the whole module must compile
#   4. femtovet     — the domain-aware analyzer suite (determinism,
#                     probability ranges, float comparisons, dropped errors)
#   5. go test -race — all tests under the race detector
#
# Opt-in extras:
#   FEMTOCR_FUZZ=1  — also run short fuzz smoke passes (-fuzztime=10s) over
#                     the core solver fuzz targets.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> femtovet"
go run ./cmd/femtovet ./...

echo "==> go test -race"
go test -race ./...

if [ -n "${FEMTOCR_FUZZ:-}" ]; then
    echo "==> fuzz smoke (FEMTOCR_FUZZ set)"
    go test -run='^$' -fuzz='^FuzzWaterfill$' -fuzztime=10s ./internal/core
    go test -run='^$' -fuzz='^FuzzGreedyChannels$' -fuzztime=10s ./internal/core
fi

echo "check.sh: all gates passed"
