#!/usr/bin/env bash
# Advisory escape-analysis cross-check for the femtovet hotpath analyzer.
#
# femtovet's hotpath check is a source-level approximation: the compiler's
# escape analysis is the ground truth for what actually reaches the heap.
# This script compiles every package that contains a //femtovet:hotpath
# annotation with -gcflags=-m, keeps the "escapes to heap" / "moved to
# heap" lines that land in annotated files, normalizes away line/column
# numbers, and diffs the result against the checked-in expectation file
# scripts/escape_expect.txt. A drift means the compiler now sees an escape
# femtovet cannot (or one disappeared) — review it, then refresh with:
#
#   ./scripts/escape_check.sh -update
#
# The check is ADVISORY: a drift prints the diff and a warning but exits 0,
# because escape-analysis output changes across compiler releases. The
# AllocsPerRun pins in internal/core/alloc_test.go remain the hard runtime
# gate.
set -euo pipefail
cd "$(dirname "$0")/.."

EXPECT=scripts/escape_expect.txt
MODE=check
if [ "${1:-}" = "-update" ]; then
    MODE=update
fi

# Files (and so packages) that carry a hotpath root annotation.
hot_files=$(grep -rl '^//femtovet:hotpath' --include='*.go' internal | sort)
if [ -z "$hot_files" ]; then
    echo "escape_check: no //femtovet:hotpath annotations found" >&2
    exit 1
fi
pkgs=$(echo "$hot_files" | xargs -n1 dirname | sort -u | sed 's|^|./|')

# A throwaway build cache forces the compiler to actually run (and print
# its -m diagnostics) instead of replaying a cached, silent build.
cache=$(mktemp -d)
trap 'rm -rf "$cache"' EXIT

actual=$(GOCACHE="$cache" go build -gcflags=-m $pkgs 2>&1 |
    grep -E 'escapes to heap|moved to heap' |
    grep -F -f <(echo "$hot_files" | sed 's/$/:/') |
    sed -E 's/^([^:]+):[0-9]+:[0-9]+: /\1: /' |
    sort -u) || true

if [ "$MODE" = update ]; then
    printf '%s\n' "$actual" > "$EXPECT"
    echo "escape_check: wrote $(printf '%s\n' "$actual" | wc -l | tr -d ' ') expectations to $EXPECT"
    exit 0
fi

if [ ! -f "$EXPECT" ]; then
    echo "escape_check: missing $EXPECT; run ./scripts/escape_check.sh -update" >&2
    exit 1
fi

if diff -u "$EXPECT" <(printf '%s\n' "$actual"); then
    echo "escape_check: compiler escape analysis matches $EXPECT"
else
    echo "escape_check: ADVISORY — escape-analysis drift against $EXPECT (see diff above)." >&2
    echo "escape_check: review the new escapes, then refresh with ./scripts/escape_check.sh -update" >&2
fi
exit 0
