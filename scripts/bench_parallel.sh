#!/usr/bin/env bash
# Benchmark the parallel replication engine and record the result as BENCH
# JSON (format documented in EXPERIMENTS.md). Runs BenchmarkFig5Quick at
# workers=1 and workers=4 and emits BENCH_parallel.json with ns/op for each
# plus the sequential/parallel speedup ratio.
#
# The engine guarantees bitwise-identical output for any worker count, so
# the speedup is pure schedule: on a single-core machine it sits at or
# slightly below 1.0 (pool overhead), on a 4-core machine it should reach
# at least 2x. The JSON records the machine's CPU budget ("cpus",
# "gomaxprocs") so a flat ratio can be told apart from a real scaling
# regression: speedup is capped by min(workers, cpus). CI uploads the JSON
# as an artifact on every run.
#
# Usage: scripts/bench_parallel.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_parallel.json}"
benchtime="${FEMTOCR_BENCHTIME:-5x}"

raw=$(go test -run '^$' -bench 'BenchmarkFig5Quick' -benchtime "$benchtime" \
    ./internal/experiments/)
echo "$raw"

echo "$raw" | awk -v out="$out" -v benchtime="$benchtime" \
    -v cpus="$(nproc)" -v gomaxprocs="${GOMAXPROCS:-$(nproc)}" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
$1 ~ /^BenchmarkFig5Quick\/workers=1/  { seq = $3; seq_iters = $2 }
$1 ~ /^BenchmarkFig5Quick\/workers=4/  { par = $3; par_iters = $2 }
END {
    if (seq == "" || par == "") {
        print "bench_parallel.sh: missing benchmark rows" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"benchmark\": \"BenchmarkFig5Quick\",\n" > out
    printf "  \"package\": \"femtocr/internal/experiments\",\n" > out
    printf "  \"goos\": \"%s\",\n", goos > out
    printf "  \"goarch\": \"%s\",\n", goarch > out
    printf "  \"cpu\": \"%s\",\n", cpu > out
    printf "  \"cpus\": %d,\n", cpus > out
    printf "  \"gomaxprocs\": %d,\n", gomaxprocs > out
    printf "  \"benchtime\": \"%s\",\n", benchtime > out
    printf "  \"results\": [\n" > out
    printf "    {\"name\": \"workers=1\", \"iterations\": %d, \"ns_per_op\": %.0f},\n", seq_iters, seq > out
    printf "    {\"name\": \"workers=4\", \"iterations\": %d, \"ns_per_op\": %.0f}\n", par_iters, par > out
    printf "  ],\n" > out
    printf "  \"speedup_workers4_over_workers1\": %.3f\n", seq / par > out
    printf "}\n" > out
}
'
echo "wrote $out"
