#!/usr/bin/env bash
# Benchmark the per-slot hot path and compare it against the checked-in
# pre-optimization baseline, benchstat-style. Runs the core solver and sim
# slot-stepping benchmarks with -benchmem, pairs each result with the same
# benchmark in scripts/bench_hotpath_baseline.txt (raw `go test -bench`
# output recorded at the last commit before the workspace/pooling rework),
# and emits BENCH_hotpath.json with ns/op, B/op, and allocs/op before and
# after plus the fractional reductions. CI uploads the JSON as an artifact
# on every run.
#
# The headline rows are the zero-allocation targets: DualSolver.Solve and
# the sim slot step must show >= 50% fewer allocs/op and >= 20% lower
# ns/op than the baseline.
#
# Regression gate: the script exits nonzero when BenchmarkGreedyLazy,
# BenchmarkDualSolver, BenchmarkEquilibriumSolver, or any
# BenchmarkSlotStep* row runs more than 10% slower (ns/op) than its
# baseline entry, so a hot-path regression fails the CI job instead of
# shipping inside a green artifact. The baseline was re-recorded at the
# commit before the incremental-greedy/vectorized-water-filling rework, on
# the same 1-CPU container class CI uses.
#
# Usage: scripts/bench_hotpath.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_hotpath.json}"
core_benchtime="${FEMTOCR_BENCHTIME:-50x}"
sim_benchtime="${FEMTOCR_BENCHTIME:-20x}"
# Each benchmark runs count times and the minimum ns/op sample is kept —
# the shared CI containers have multi-x clock jitter between scheduling
# windows, and the minimum is the standard noise-robust statistic for
# "how fast is this code", which the 10% gate needs to stay non-flaky.
bench_count="${FEMTOCR_BENCHCOUNT:-5}"
baseline="scripts/bench_hotpath_baseline.txt"

raw=$(
    go test -run '^$' -benchmem -benchtime "$core_benchtime" -count "$bench_count" \
        -bench 'BenchmarkDualSolver$|BenchmarkEquilibriumSolver$|BenchmarkGreedyLazy$|BenchmarkHeuristic1$|BenchmarkHeuristic2$|BenchmarkWaterfill$' \
        ./internal/core/
    go test -run '^$' -benchmem -benchtime "$sim_benchtime" -count "$bench_count" \
        -bench 'BenchmarkSlotStep|BenchmarkGOPProposedSingle$|BenchmarkGOPProposedInterfering$' \
        ./internal/sim/
)
echo "$raw"

awk -v out="$out" -v core_benchtime="$core_benchtime" -v sim_benchtime="$sim_benchtime" \
    -v bench_count="$bench_count" \
    -v cpus="$(nproc)" -v gomaxprocs="${GOMAXPROCS:-$(nproc)}" '
# Parse one `go test -bench` result line: name, then value/unit pairs.
# Field positions vary (custom metrics like Q_evals appear mid-line), so
# units are located by scanning, and the CPU-count suffix (-8) is stripped
# for stable keys. Repeated samples of one benchmark (-count > 1) keep the
# minimum-ns/op line, all metrics taken from that same sample.
function parse(line, dest,    f, n, i, name, ns, bytes, allocs) {
    n = split(line, f, /[ \t]+/)
    name = f[1]
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = ""; bytes = 0; allocs = 0
    for (i = 3; i <= n; i++) {
        if (f[i] == "ns/op")     ns     = f[i-1]
        if (f[i] == "B/op")      bytes  = f[i-1]
        if (f[i] == "allocs/op") allocs = f[i-1]
    }
    if (ns == "") return
    if (((name, "ns") in dest) && dest[name, "ns"] + 0 <= ns + 0) return
    dest[name, "ns"]     = ns
    dest[name, "bytes"]  = bytes
    dest[name, "allocs"] = allocs
    if (!((name) in seen)) { order[++count] = name; seen[name] = 1 }
}
FILENAME == baseline && /^Benchmark/ { parse($0, before); next }
FILENAME != baseline && /^Benchmark/ { parse($0, after); next }
FILENAME != baseline && /^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
FILENAME != baseline && /^goos:/ { goos = $2 }
FILENAME != baseline && /^goarch:/ { goarch = $2 }
END {
    printf "{\n" > out
    printf "  \"goos\": \"%s\",\n", goos > out
    printf "  \"goarch\": \"%s\",\n", goarch > out
    printf "  \"cpu\": \"%s\",\n", cpu > out
    printf "  \"cpus\": %d,\n", cpus > out
    printf "  \"gomaxprocs\": %d,\n", gomaxprocs > out
    printf "  \"benchtime_core\": \"%s\",\n", core_benchtime > out
    printf "  \"benchtime_sim\": \"%s\",\n", sim_benchtime > out
    printf "  \"bench_count\": %d,\n", bench_count > out
    printf "  \"statistic\": \"min ns/op sample per benchmark\",\n" > out
    printf "  \"baseline\": \"scripts/bench_hotpath_baseline.txt\",\n" > out
    printf "  \"caveat\": \"per-task ns/op measured on a 1-CPU container: wall-clock parallel speedup is pinned at ~1.0 here, so compare serialized work (ns/op, allocs/op), never wall time\",\n" > out
    printf "  \"results\": [\n" > out
    emitted = 0
    failed = 0
    for (i = 1; i <= count; i++) {
        name = order[i]
        if (!((name, "ns") in before) || !((name, "ns") in after)) continue
        if ((name == "GreedyLazy" || name == "DualSolver" || \
             name == "EquilibriumSolver" || name ~ /^SlotStep/) && \
            after[name, "ns"] > 1.10 * before[name, "ns"]) {
            printf "bench_hotpath.sh: REGRESSION: %s ns/op %.1f is >10%% above baseline %.1f\n", \
                name, after[name, "ns"], before[name, "ns"] > "/dev/stderr"
            failed = 1
        }
        if (emitted++) printf ",\n" > out
        printf "    {\"name\": \"%s\",\n", name > out
        printf "     \"before\": {\"ns_per_op\": %.1f, \"bytes_per_op\": %d, \"allocs_per_op\": %d},\n", \
            before[name, "ns"], before[name, "bytes"], before[name, "allocs"] > out
        printf "     \"after\":  {\"ns_per_op\": %.1f, \"bytes_per_op\": %d, \"allocs_per_op\": %d},\n", \
            after[name, "ns"], after[name, "bytes"], after[name, "allocs"] > out
        printf "     \"ns_reduction\": %.3f,\n", \
            1 - after[name, "ns"] / before[name, "ns"] > out
        allocs_red = (before[name, "allocs"] > 0) ? 1 - after[name, "allocs"] / before[name, "allocs"] : 0
        printf "     \"allocs_reduction\": %.3f}", allocs_red > out
    }
    printf "\n  ]\n}\n" > out
    if (emitted == 0) {
        print "bench_hotpath.sh: no benchmark pairs matched the baseline" > "/dev/stderr"
        exit 1
    }
    if (failed) exit 2
}
' baseline="$baseline" "$baseline" <(echo "$raw")
echo "wrote $out"
