// Quickstart: build the paper's single-FBS scenario, stream three MGS
// videos for 20 GOPs under the proposed allocation, and print the received
// quality of every user.
package main

import (
	"fmt"
	"log"

	"femtocr"
)

func main() {
	// The paper's §V defaults: M=8 licensed channels, P01=0.4/P10=0.3
	// (utilization eta ~ 0.57), collision threshold gamma=0.2, sensing
	// errors epsilon=delta=0.3, GOP deadline T=10 slots.
	cfg := femtocr.DefaultConfig()

	net, err := femtocr.SingleFBSNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	res, err := femtocr.Simulate(net, femtocr.SimOptions{Seed: 42, GOPs: 20})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("femtocell CR video streaming — proposed scheme")
	fmt.Printf("channels: %d licensed (B1=%.1f Mbps) + common (B0=%.1f Mbps), eta=%.2f\n",
		cfg.M, cfg.B1, cfg.B0, cfg.Utilization())
	for j, u := range net.Users {
		fmt.Printf("  user %d streaming %-7s -> %.2f dB Y-PSNR\n",
			j+1, u.Seq.Name, res.PerUserPSNR[j])
	}
	fmt.Printf("mean quality: %.2f dB over %d GOPs\n", res.MeanPSNR, res.GOPs)
	fmt.Printf("primary-user collision rate: %.3f (bound gamma = %.2f)\n",
		res.CollisionRate, cfg.Gamma)
}
