// Packet-level delivery: the §III-E discipline made visible. Streams the
// paper's three videos through explicit NAL-unit queues with
// significance-first transmission, ARQ retransmissions on faded slots, and
// overdue discards at GOP deadlines — then compares the reconstructed
// quality against the rate-based engine on identical randomness.
package main

import (
	"fmt"
	"log"

	"femtocr"
)

func main() {
	cfg := femtocr.DefaultConfig()
	net, err := femtocr.SingleFBSNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("packet-level vs rate-based engines (same seeds)")
	fmt.Printf("%-6s  %-18s  %-18s\n", "seed", "packet engine (dB)", "rate engine (dB)")
	var pktSum, rateSum float64
	const runs = 5
	for seed := uint64(1); seed <= runs; seed++ {
		pkt, err := femtocr.SimulatePackets(net, femtocr.PacketOptions{Seed: seed, GOPs: 15})
		if err != nil {
			log.Fatal(err)
		}
		rate, err := femtocr.Simulate(net, femtocr.SimOptions{Seed: seed, GOPs: 15})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d  %-18.2f  %-18.2f\n", seed, pkt.MeanPSNR, rate.MeanPSNR)
		pktSum += pkt.MeanPSNR
		rateSum += rate.MeanPSNR
	}
	fmt.Printf("mean    %-18.2f  %-18.2f\n\n", pktSum/runs, rateSum/runs)

	// Show the MAC-level statistics of one run.
	res, err := femtocr.SimulatePackets(net, femtocr.PacketOptions{Seed: 1, GOPs: 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("MAC statistics (seed 1, 15 GOPs):")
	fmt.Printf("  fragments sent:        %d\n", res.SentPackets)
	fmt.Printf("  ARQ retransmissions:   %d\n", res.Retransmissions)
	fmt.Printf("  overdue NAL discards:  %d (MGS truncation at the deadline)\n", res.DroppedPackets)
	fmt.Printf("  delivered payload:     %.1f KiB\n", float64(res.DeliveredBytes)/1024)
	fmt.Printf("  collision rate:        %.3f (gamma %.2f)\n", res.CollisionRate, cfg.Gamma)
}
