// Sensing-error sweep: the Fig. 6(b) experiment in miniature, plus a
// demonstration of the Bayesian fusion pipeline of eqs. (2)-(4). The sweep
// shows why video quality is only mildly sensitive to sensing errors: both
// error types are modeled inside the access rule, so the allocator hedges
// automatically.
package main

import (
	"fmt"
	"log"

	"femtocr"
	"femtocr/internal/markov"
	"femtocr/internal/rng"
	"femtocr/internal/sensing"
)

func main() {
	// Part 1: fusion mechanics. Watch the availability posterior move as
	// noisy sensing results arrive on a channel with utilization 0.571.
	fmt.Println("=== Bayesian fusion of sensing results (eqs. 2-4) ===")
	det, err := sensing.NewDetector(0.3, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	fuser, err := sensing.NewFuser(0.571)
	if err != nil {
		log.Fatal(err)
	}
	stream := rng.New(7)
	fmt.Printf("prior availability: %.3f\n", fuser.Posterior())
	for i := 1; i <= 6; i++ {
		obs := det.Sense(markov.Idle, stream) // channel is truly idle
		fuser.Update(obs)
		report := "idle"
		if obs.Busy {
			report = "busy"
		}
		fmt.Printf("observation %d reports %-4s -> posterior %.3f\n", i, report, fuser.Posterior())
	}

	// Part 2: end-to-end quality across the paper's five sensing-error
	// operating points {epsilon, delta}.
	fmt.Println("\n=== video quality vs sensing error (Fig. 6(b) shape) ===")
	pairs := [][2]float64{{0.2, 0.48}, {0.24, 0.38}, {0.3, 0.3}, {0.38, 0.24}, {0.48, 0.2}}
	for _, pair := range pairs {
		cfg := femtocr.DefaultConfig()
		cfg.Eps, cfg.Delta = pair[0], pair[1]
		net, err := femtocr.SingleFBSNetwork(cfg)
		if err != nil {
			log.Fatal(err)
		}
		sum := 0.0
		const runs = 3
		for r := 0; r < runs; r++ {
			res, err := femtocr.Simulate(net, femtocr.SimOptions{Seed: 300 + uint64(r), GOPs: 10})
			if err != nil {
				log.Fatal(err)
			}
			sum += res.MeanPSNR
		}
		fmt.Printf("eps=%.2f delta=%.2f -> %.2f dB\n", pair[0], pair[1], sum/runs)
	}
	fmt.Println("\nthe flat profile is the paper's point: both error types are")
	fmt.Println("modeled in the optimization, so quality degrades gracefully.")
}
