// Interfering femtocells: the §V-B scenario. Three FBSs whose coverages
// overlap pairwise along a line (the Fig. 5 path graph) stream nine videos.
// The example prints the interference graph, the Theorem 2 guarantee, the
// per-scheme quality, and the eq. (23) upper bound on the optimum.
package main

import (
	"fmt"
	"log"

	"femtocr"
)

func main() {
	cfg := femtocr.DefaultConfig()
	net, err := femtocr.InterferingNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(net.Graph.String())
	dmax := net.Graph.MaxDegree()
	fmt.Printf("Theorem 2: the greedy channel allocation achieves at least 1/%d of the optimum\n\n", 1+dmax)

	const runs = 3
	var proposedMean, boundMean float64
	for _, sch := range []femtocr.Scheme{femtocr.Proposed, femtocr.Heuristic1, femtocr.Heuristic2} {
		sum, bsum := 0.0, 0.0
		for r := 0; r < runs; r++ {
			res, err := femtocr.Simulate(net, femtocr.SimOptions{
				Seed:       200 + uint64(r),
				GOPs:       10,
				Scheme:     sch,
				TrackBound: sch == femtocr.Proposed,
			})
			if err != nil {
				log.Fatal(err)
			}
			sum += res.MeanPSNR
			bsum += res.BoundPSNR
		}
		fmt.Printf("%-12s mean Y-PSNR %.2f dB\n", sch, sum/runs)
		if sch == femtocr.Proposed {
			proposedMean = sum / runs
			boundMean = bsum / runs
		}
	}
	fmt.Printf("\neq. (23) upper bound on the optimum: %.2f dB (gap to proposed: %.2f dB)\n",
		boundMean, boundMean-proposedMean)
}
