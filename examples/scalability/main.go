// Scalability: grow the interfering deployment beyond the paper's three
// femtocells and watch the greedy channel allocation, its Theorem 2
// guarantee, and the eq. (23) bound gap as the conflict graph stretches.
package main

import (
	"fmt"
	"log"

	"femtocr"
)

func main() {
	p := femtocr.QuickScale()
	p.Runs = 3
	p.GOPs = 6
	p.Parallel.Workers = 0 // one worker per CPU; results are identical for any count

	fmt.Println("interfering femtocells on a line (path interference graph)")
	fmt.Printf("%-5s %-6s %-14s %-14s %-14s %-10s %-8s\n",
		"N", "users", "Proposed (dB)", "H1 (dB)", "H2 (dB)", "bound gap", "elapsed")
	points, err := femtocr.Scalability(p, []int{2, 3, 4, 6})
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range points {
		fmt.Printf("%-5d %-6d %-14.2f %-14.2f %-14.2f %-10.2f %-8s\n",
			pt.NumFBS, pt.Users, pt.Proposed.Mean, pt.H1.Mean, pt.H2.Mean,
			pt.BoundGapDB, pt.Elapsed.Round(1e7))
	}
	fmt.Println("\nThe path graph keeps Dmax = 2 for every N, so Theorem 2")
	fmt.Println("guarantees at least 1/3 of the optimum throughout; the measured")
	fmt.Println("eq. (23) gap stays far tighter than that worst case.")
}
