// Metro: generate a city-scale femtocell deployment, decompose its
// interference graph into independent shards, and run the sharded engine.
// The fold is bitwise-deterministic for any Workers/Shards setting, and
// the per-task ns accounting shows the speedup a parallel machine would
// reach even when this one is CPU-starved.
package main

import (
	"fmt"
	"log"

	"femtocr"
)

func main() {
	cfg := femtocr.DefaultConfig()

	// 400 femtocells scattered over an auto-sized urban area (~0.72 km²),
	// two generated MGS streams per cell.
	net, err := femtocr.NewNetwork(cfg, femtocr.MetroPoissonSpec(400, 2))
	if err != nil {
		log.Fatal(err)
	}

	res, err := femtocr.SimulateSharded(net, femtocr.SimOptions{
		Seed: 1, GOPs: 2,
		Parallel: femtocr.Parallelism{Workers: 0}, // one worker per CPU
	})
	if err != nil {
		log.Fatal(err)
	}

	largest := 0
	for _, s := range res.PerShard {
		if s.FBSs > largest {
			largest = s.FBSs
		}
	}
	fmt.Printf("metro: %d FBSs, %d users, %d interference shards (largest: %d FBSs)\n",
		res.FBSs, res.Users, res.Shards, largest)
	fmt.Printf("mean Y-PSNR %.2f dB | worst user %.2f dB | fairness %.3f\n",
		res.MeanPSNR, res.MinUserPSNR, res.FairnessIndex)
	fmt.Printf("per-user PSNR: mean %.2f  stddev %.2f  over %d users\n",
		res.PSNR.Mean, res.PSNR.StdDev, res.PSNR.N)
	if t := res.Timing; t != nil {
		fmt.Printf("work: %d tasks, %.1f ms serialized, ideal speedup %.2fx at this grouping\n",
			len(t.TaskNS), float64(t.SumTaskNS)/1e6, t.IdealSpeedup())
	}

	// The same run with a different schedule folds to the identical result.
	again, err := femtocr.SimulateSharded(net, femtocr.SimOptions{
		Seed: 1, GOPs: 2,
		Parallel: femtocr.Parallelism{Workers: 1, Shards: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	identical := again.MeanPSNR == res.MeanPSNR //femtovet:ignore floateq -- the sharded fold guarantees bitwise determinism; exact is the claim
	fmt.Printf("re-run with Workers=1 Shards=4: mean identical: %v\n", identical)
}
