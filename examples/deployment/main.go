// Deployment realism: turn on every "the operator does not know X"
// extension at once — channel utilizations learned online from noisy
// sensing, the Bayesian occupancy filter for slowly-varying primary
// traffic, OFDM frequency-selective links, and adaptive per-GOP encoding —
// and compare against the paper's idealized assumptions.
package main

import (
	"fmt"
	"log"

	"femtocr"
)

func main() {
	// Slow primary traffic (same eta = 0.571, 5x longer busy/idle runs):
	// the regime where learning and filtering pay.
	cfg := femtocr.DefaultConfig()
	cfg.P01, cfg.P10 = 0.08, 0.06
	cfg.OFDMSubcarriers = 16

	net, err := femtocr.SingleFBSNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const runs = 4
	mean := func(opts femtocr.SimOptions) float64 {
		sum := 0.0
		for seed := uint64(1); seed <= runs; seed++ {
			opts.Seed = seed
			opts.GOPs = 20
			res, err := femtocr.Simulate(net, opts)
			if err != nil {
				log.Fatal(err)
			}
			sum += res.MeanPSNR
		}
		return sum / runs
	}

	fmt.Println("slowly-varying primary traffic, OFDM links (16 subcarriers)")
	fmt.Printf("  idealized (eta known, stationary prior): %.2f dB\n",
		mean(femtocr.SimOptions{}))
	fmt.Printf("  eta learned online:                      %.2f dB\n",
		mean(femtocr.SimOptions{EstimateUtilization: true}))
	fmt.Printf("  Bayesian occupancy filter:               %.2f dB\n",
		mean(femtocr.SimOptions{TrackBeliefs: true}))

	// Packet level: fixed full-rate encode vs adaptive re-encode.
	pkt := func(adaptive bool) (float64, int) {
		sum, drops := 0.0, 0
		for seed := uint64(1); seed <= runs; seed++ {
			res, err := femtocr.SimulatePackets(net, femtocr.PacketOptions{
				Seed: seed, GOPs: 20, AdaptiveRate: adaptive,
			})
			if err != nil {
				log.Fatal(err)
			}
			sum += res.MeanPSNR
			drops += res.DroppedPackets
		}
		return sum / runs, drops
	}
	fixedPSNR, fixedDrops := pkt(false)
	adaptPSNR, adaptDrops := pkt(true)
	fmt.Println("\npacket level, per-GOP encoding policy:")
	fmt.Printf("  fixed saturation-rate encode: %.2f dB, %d overdue discards\n", fixedPSNR, fixedDrops)
	fmt.Printf("  EWMA-adaptive encode:         %.2f dB, %d overdue discards\n", adaptPSNR, adaptDrops)
}
