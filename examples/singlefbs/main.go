// Single-FBS scheme comparison: the Fig. 3 experiment in miniature. Streams
// Bus, Mobile and Harbor to three CR users under all three schemes, averages
// several replications, and prints the per-user quality bars with the
// distributed algorithm's dual-variable convergence (Fig. 4(a)).
package main

import (
	"fmt"
	"log"

	"femtocr"
	"femtocr/internal/stats"
)

func main() {
	cfg := femtocr.DefaultConfig()
	net, err := femtocr.SingleFBSNetwork(cfg)
	if err != nil {
		log.Fatal(err)
	}

	const runs = 5
	fmt.Println("=== per-user video quality (mean of", runs, "runs) ===")
	for _, sch := range []femtocr.Scheme{femtocr.Proposed, femtocr.Heuristic1, femtocr.Heuristic2} {
		perUser := make([]stats.Running, net.K())
		for r := 0; r < runs; r++ {
			res, err := femtocr.Simulate(net, femtocr.SimOptions{
				Seed:   100 + uint64(r),
				GOPs:   20,
				Scheme: sch,
			})
			if err != nil {
				log.Fatal(err)
			}
			for j, v := range res.PerUserPSNR {
				perUser[j].Add(v)
			}
		}
		fmt.Printf("%-12s", sch)
		for j := range perUser {
			fmt.Printf("  user%d %.2f dB", j+1, perUser[j].Mean())
		}
		fmt.Println()
	}

	// Dual-variable convergence of the distributed algorithm (Fig. 4(a)).
	res, err := femtocr.Simulate(net, femtocr.SimOptions{
		Seed:             100,
		GOPs:             1,
		CaptureDualTrace: true,
		DualIterations:   400,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== dual-variable convergence (first slot) ===")
	fmt.Println("iter    lambda_0      lambda_1")
	for i, row := range res.DualTrace {
		if i%50 != 0 && i != len(res.DualTrace)-1 {
			continue
		}
		fmt.Printf("%4d  %10.6f  %10.6f\n", i, row[0], row[1])
	}
}
