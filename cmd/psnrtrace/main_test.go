package main

import (
	"strings"
	"testing"
)

func TestRunListPresets(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Bus", "Mobile", "Harbor", "alpha", "ceiling"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("missing %q:\n%s", want, b.String())
		}
	}
}

func TestRunGOPLayout(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-seq", "Bus", "-rate", "0.5"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Bus GOP", "transmission order", "decodable quality", "100% of units"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// The first unit must be the frame-0 base layer.
	if !strings.Contains(out, "#1   frame  0 (I) layer 0") {
		t.Fatalf("first unit is not the I-frame base layer:\n%s", out)
	}
}

func TestRunRDTable(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-seq", "Harbor", "-rd"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "rate-distortion") {
		t.Fatalf("missing table:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-seq", "nosuch"}, &b); err == nil {
		t.Fatal("unknown sequence accepted")
	}
	if err := run([]string{"-seq", "Bus", "-rate", "0"}, &b); err == nil {
		t.Fatal("zero rate accepted")
	}
	if err := run([]string{"-seq", "Bus", "-gop", "0"}, &b); err == nil {
		t.Fatal("zero gop accepted")
	}
}
