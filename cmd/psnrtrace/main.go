// Command psnrtrace inspects the MGS video model: the built-in sequence
// presets with their eq. (9) rate-quality laws, a GOP's NAL-unit layout at
// a chosen encoding rate, and the decodable-quality staircase as units
// arrive in significance order.
//
// Examples:
//
//	psnrtrace                          # list the sequence presets
//	psnrtrace -seq Bus -rate 0.5       # GOP layout + quality staircase
//	psnrtrace -seq Mobile -rd          # rate-distortion table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"femtocr/internal/safeio"
	"femtocr/internal/video"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "psnrtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	// Sticky-error writer: output errors surface once, at the end.
	out := safeio.NewWriter(w)
	fs := flag.NewFlagSet("psnrtrace", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		seqName = fs.String("seq", "", "sequence name (empty: list presets)")
		rate    = fs.Float64("rate", 0.5, "encoding rate, Mbps")
		gopSize = fs.Int("gop", 16, "GOP size, frames")
		layers  = fs.Int("layers", 3, "MGS enhancement layers per frame")
		rdTable = fs.Bool("rd", false, "print the rate-distortion table instead of the GOP layout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *seqName == "" {
		fmt.Fprintf(out, "%-8s  %5s  %6s  %9s  %9s\n", "name", "alpha", "beta", "max rate", "ceiling")
		for _, s := range video.StandardSequences() {
			fmt.Fprintf(out, "%-8s  %5.1f  %6.1f  %6.2f Mb  %6.1f dB\n",
				s.Name, s.RD.Alpha, s.RD.Beta, s.MaxRateMbps, s.MaxPSNR())
		}
		return out.Err()
	}

	seq, err := video.SequenceByName(*seqName)
	if err != nil {
		return err
	}

	if *rdTable {
		fmt.Fprintf(out, "%s rate-distortion (eq. 9: W = %.1f + %.1f R):\n", seq.Name, seq.RD.Alpha, seq.RD.Beta)
		for r := 0.0; r <= seq.MaxRateMbps+1e-9; r += seq.MaxRateMbps / 10 {
			fmt.Fprintf(out, "  %.3f Mbps -> %.2f dB\n", r, seq.RD.PSNR(r))
		}
		return out.Err()
	}

	g, err := video.BuildGOP(seq, *gopSize, *layers, *rate)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s GOP: %d frames, %d NAL units, %d bytes, %.3f Mbps\n",
		seq.Name, *gopSize, len(g.Units), g.TotalBytes(), g.RateMbps())

	fmt.Fprintln(out, "\ntransmission order (significance-first):")
	order := g.TransmissionOrder()
	for i, u := range order {
		if i >= 12 && i < len(order)-3 {
			if i == 12 {
				fmt.Fprintf(out, "  ... %d more units ...\n", len(order)-15)
			}
			continue
		}
		fmt.Fprintf(out, "  #%-3d frame %2d (%s) layer %d  %5d bytes  sig %.4f\n",
			i+1, u.Frame, u.Type, u.Layer, u.SizeBytes, u.Significance)
	}

	fmt.Fprintln(out, "\ndecodable quality vs received units:")
	steps := []float64{0, 0.25, 0.5, 0.75, 1.0}
	for _, frac := range steps {
		n := int(frac * float64(len(order)))
		fmt.Fprintf(out, "  %3.0f%% of units -> %.2f dB\n", frac*100, g.DecodablePSNR(n))
	}
	return out.Err()
}
