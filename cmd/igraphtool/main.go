// Command igraphtool derives the interference graph of a femtocell
// deployment from its geometry and reports the quantities the paper's
// Theorem 2 depends on: vertex degrees, Dmax, the 1/(1+Dmax) guarantee, and
// a greedy frequency plan (graph coloring).
//
// Examples:
//
//	igraphtool -n 3 -spacing 18 -radius 12        # the paper's Fig. 5 path
//	igraphtool -n 4 -spacing 30 -radius 12 -dot   # isolated cells, DOT output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"femtocr/internal/geometry"
	"femtocr/internal/igraph"
	"femtocr/internal/safeio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "igraphtool:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	// Sticky-error writer: output errors surface once, at the end.
	out := safeio.NewWriter(w)
	fs := flag.NewFlagSet("igraphtool", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		n       = fs.Int("n", 3, "number of femtocells")
		spacing = fs.Float64("spacing", 18, "center spacing along the line, meters")
		radius  = fs.Float64("radius", 12, "coverage radius, meters")
		grid    = fs.Bool("grid", false, "deploy on a square-ish grid instead of a line")
		dot     = fs.Bool("dot", false, "emit Graphviz DOT instead of the text summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		disks []geometry.Disk
		err   error
	)
	if *grid {
		cols := 1
		for cols*cols < *n {
			cols++
		}
		rows := (*n + cols - 1) / cols
		disks, err = geometry.GridDeployment(geometry.Point{}, rows, cols, *spacing, *radius)
		if err == nil && len(disks) > *n {
			disks = disks[:*n]
		}
	} else {
		disks, err = geometry.LineDeployment(geometry.Point{}, *n, *spacing, *radius)
	}
	if err != nil {
		return err
	}

	g := igraph.FromCoverage(disks)
	if *dot {
		fmt.Fprint(out, g.DOT("interference"))
		return out.Err()
	}

	fmt.Fprint(out, g.String())
	fmt.Fprintf(out, "Dmax = %d\n", g.MaxDegree())
	fmt.Fprintf(out, "Theorem 2 guarantee: greedy >= 1/%d of the optimum\n", 1+g.MaxDegree())
	colors, used := g.GreedyColoring()
	fmt.Fprintf(out, "frequency plan (%d classes):", used)
	for i, c := range colors {
		fmt.Fprintf(out, " FBS%d->class%d", i+1, c)
	}
	fmt.Fprintln(out)
	comps := g.Components()
	fmt.Fprintf(out, "%d connected component(s)\n", len(comps))
	return out.Err()
}
