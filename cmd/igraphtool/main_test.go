package main

import (
	"strings"
	"testing"
)

func TestRunPaperPath(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "3", "-spacing", "18", "-radius", "12"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"FBS 1 -- FBS 2", "FBS 2 -- FBS 3", "Dmax = 2", "1/3 of the optimum",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FBS 1 -- FBS 3") {
		t.Fatal("FBS 1 and 3 must not interfere on the Fig. 5 path")
	}
}

func TestRunIsolated(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "4", "-spacing", "30", "-radius", "12"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Dmax = 0") || !strings.Contains(out, "4 connected component(s)") {
		t.Fatalf("isolated deployment summary wrong:\n%s", out)
	}
}

func TestRunDOT(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "3", "-spacing", "18", "-dot"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "graph interference {") {
		t.Fatalf("not DOT output:\n%s", b.String())
	}
}

func TestRunGrid(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "5", "-grid", "-spacing", "18", "-radius", "12"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "5 FBS") {
		t.Fatalf("grid output wrong:\n%s", b.String())
	}
}

func TestRunBadArgs(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-n", "2", "-radius", "0"}, &b); err == nil {
		t.Fatal("zero radius accepted")
	}
}
