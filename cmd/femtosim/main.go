// Command femtosim runs one femtocell-CR video-streaming simulation and
// prints the per-user and average video quality, collision rate, and
// optional diagnostics.
//
// Examples:
//
//	femtosim -scenario single -scheme proposed -runs 10 -gops 20
//	femtosim -scenario interfering -scheme h2 -eta 0.5
//	femtosim -scenario single -dualtrace
//	femtosim -scenario metro -metro-fbs 400 -metro-users 2 -gops 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"femtocr/internal/experiments"
	"femtocr/internal/netmodel"
	"femtocr/internal/packetsim"
	"femtocr/internal/profiling"
	"femtocr/internal/safeio"
	"femtocr/internal/sim"
	"femtocr/internal/stats"
	"femtocr/internal/trace"
	"femtocr/internal/video"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "femtosim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) (retErr error) {
	// All report output funnels through a sticky-error writer: fmt.Fprintf
	// errors are recorded once and surfaced at the end instead of being
	// checked (or dropped) at every call site.
	out := safeio.NewWriter(w)
	fs := flag.NewFlagSet("femtosim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		scenario  = fs.String("scenario", "single", "scenario: single | interfering | noninterfering | metro")
		scheme    = fs.String("scheme", "proposed", "scheme: proposed | h1 | h2 | rr | maxtp")
		seed      = fs.Uint64("seed", 1, "base random seed")
		runs      = fs.Int("runs", 1, "independent replications")
		gops      = fs.Int("gops", 20, "GOPs per run")
		m         = fs.Int("m", 8, "licensed channels M")
		b0        = fs.Float64("b0", 0.3, "common-channel capacity, Mbps")
		b1        = fs.Float64("b1", 0.3, "licensed-channel capacity, Mbps")
		eta       = fs.Float64("eta", -1, "channel utilization (default: P01/(P01+P10) from the paper)")
		gamma     = fs.Float64("gamma", 0.2, "collision threshold")
		eps       = fs.Float64("eps", 0.3, "sensing false-alarm probability")
		delta     = fs.Float64("delta", 0.3, "sensing miss-detection probability")
		bound     = fs.Bool("bound", false, "track the eq. (23) upper bound (interfering + proposed)")
		dual      = fs.Bool("dual", false, "use the distributed dual subgradient solver (Tables I/II) instead of the price-equilibrium default")
		warm      = fs.Bool("warmstart", false, "carry dual multipliers across slots (same results, fewer solver iterations)")
		warmStats = fs.Bool("warmstats", false, "collect per-slot solver iteration statistics and print a WARMSTATS line")
		dualTrace = fs.Bool("dualtrace", false, "print the dual-variable convergence trace of the first slot")
		dualIters = fs.Int("dualiters", 600, "dual iterations for -dualtrace")
		packets   = fs.Bool("packets", false, "run the packet-level engine (NAL queues, ARQ, deadlines)")
		beliefs   = fs.Bool("beliefs", false, "use the Bayesian occupancy filter as the fusion prior")
		estimate  = fs.Bool("estimate", false, "learn channel utilizations online instead of assuming them known")
		subcar    = fs.Int("ofdm", 0, "OFDM subcarriers per channel (0: flat Rayleigh links)")
		showTrace = fs.Bool("trace", false, "print a slot-trace summary of the first run")
		asJSON    = fs.Bool("json", false, "emit the last run's result as JSON (for scripting)")
		workers   = fs.Int("workers", 0, "concurrent replications (0: one per CPU); results are identical for any value")
		shards    = fs.Int("shards", 0, "metro: shard groups folded per run (0: one per interference component); results are identical for any value")
		metroFBS  = fs.Int("metro-fbs", 100, "metro: femtocell count (poisson layout)")
		metroUser = fs.Int("metro-users", 3, "metro: generated users per femtocell")
		metroArea = fs.Float64("metro-area", 0, "metro: square area side in meters (0: auto-size from the FBS count)")
		metroLay  = fs.String("metro-layout", "poisson", "metro: layout, poisson | grid")
		metroRows = fs.Int("metro-rows", 4, "metro grid: city-block rows")
		metroCols = fs.Int("metro-cols", 4, "metro grid: city-block columns")
		metroBloc = fs.Int("metro-block", 3, "metro grid: interfering femtocells per block")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil && retErr == nil {
			retErr = err
		}
	}()

	cfg := netmodel.DefaultConfig()
	cfg.M = *m
	cfg.B0 = *b0
	cfg.B1 = *b1
	cfg.Gamma = *gamma
	cfg.Eps = *eps
	cfg.Delta = *delta
	cfg.OFDMSubcarriers = *subcar
	if *eta >= 0 {
		var err error
		cfg, err = cfg.WithUtilization(*eta)
		if err != nil {
			return err
		}
	}

	var sch sim.Scheme
	switch *scheme {
	case "proposed":
		sch = sim.Proposed
	case "h1":
		sch = sim.Heuristic1
	case "h2":
		sch = sim.Heuristic2
	case "rr":
		sch = sim.RoundRobin
	case "maxtp":
		sch = sim.MaxThroughput
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}

	if *scenario == "metro" {
		var spec netmodel.TopologySpec
		switch *metroLay {
		case "poisson":
			spec = netmodel.MetroPoissonSpec(*metroFBS, *metroUser)
			spec.Width, spec.Height = *metroArea, *metroArea
		case "grid":
			spec = netmodel.MetroGridSpec(*metroRows, *metroCols, *metroUser)
			spec.FBSPerBlock = *metroBloc
		default:
			return fmt.Errorf("unknown metro layout %q", *metroLay)
		}
		return runMetro(out, cfg, spec, sch, *seed, *runs, *gops,
			sim.Parallelism{Workers: *workers, Shards: *shards}, *asJSON,
			*dual, *warm, *warmStats)
	}

	var net *netmodel.Network
	switch *scenario {
	case "single":
		net, err = netmodel.PaperSingleFBS(cfg)
	case "interfering":
		net, err = netmodel.PaperInterfering(cfg)
	case "noninterfering":
		trio := video.PaperTrio()
		net, err = netmodel.NonInterfering(cfg, [][]video.Sequence{trio[:], trio[:]})
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "scenario=%s scheme=%s M=%d eta=%.3f gamma=%.2f eps=%.2f delta=%.2f B0=%.2f B1=%.2f\n",
		*scenario, sch, cfg.M, cfg.Utilization(), cfg.Gamma, cfg.Eps, cfg.Delta, cfg.B0, cfg.B1)

	if *packets {
		return runPackets(out, net, sch, *seed, *runs, *gops, *workers)
	}

	// Fan the replications over the worker pool: each run writes its result
	// into its own slot, and all accumulation happens after the join in run
	// order, so the report is identical for any worker count.
	results := make([]*sim.Result, *runs)
	recorders := make([]*trace.Recorder, *runs)
	if *showTrace {
		recorders[0] = &trace.Recorder{}
	}
	err = experiments.RunGrid(*runs, *workers, func(r int) error {
		res, err := sim.Run(net, sim.Options{
			Seed:                *seed + uint64(r),
			GOPs:                *gops,
			Scheme:              sch,
			TrackBound:          *bound,
			CaptureDualTrace:    *dualTrace && r == 0,
			DualIterations:      *dualIters,
			TrackBeliefs:        *beliefs,
			EstimateUtilization: *estimate,
			UseDualSolver:       *dual,
			WarmStart:           *warm,
			SolveStats:          *warmStats,
			Recorder:            recorders[r],
		})
		if err != nil {
			return fmt.Errorf("run %d (seed %d): %w", r, *seed+uint64(r), err)
		}
		results[r] = res
		return nil
	})
	if err != nil {
		return err
	}

	var meanAcc, boundAcc, collAcc, fairAcc, minAcc stats.Running
	perUser := make([][]float64, net.K())
	var lastResult *sim.Result
	for r, res := range results {
		lastResult = res
		meanAcc.Add(res.MeanPSNR)
		collAcc.Add(res.CollisionRate)
		fairAcc.Add(res.FairnessIndex)
		minAcc.Add(res.MinUserPSNR)
		if *bound {
			boundAcc.Add(res.BoundPSNR)
		}
		for j, v := range res.PerUserPSNR {
			perUser[j] = append(perUser[j], v)
		}
		if recorders[r] != nil {
			fmt.Fprintln(out, "\nslot-trace summary (run 1):")
			fmt.Fprint(out, recorders[r].Summarize().String())
			fmt.Fprintln(out)
		}
		if *dualTrace && r == 0 && res.DualTrace != nil {
			fmt.Fprintln(out, "\ndual-variable trace (iteration lambda_0 lambda_1 ...):")
			for i, row := range res.DualTrace {
				if i%25 != 0 && i != len(res.DualTrace)-1 {
					continue
				}
				fmt.Fprintf(out, "%5d", i)
				for _, l := range row {
					fmt.Fprintf(out, "  %.6g", l)
				}
				fmt.Fprintln(out)
			}
			fmt.Fprintln(out)
		}
	}

	for j := range perUser {
		s, err := stats.Summarize(perUser[j])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "user %d (%s): %.2f dB ±%.2f\n", j+1, net.Users[j].Seq.Name, s.Mean, s.HalfWidth)
	}
	fmt.Fprintf(out, "mean Y-PSNR: %.2f dB (stddev %.2f over %d runs)\n", meanAcc.Mean(), meanAcc.StdDev(), *runs)
	if *bound {
		fmt.Fprintf(out, "eq.(23) upper bound: %.2f dB\n", boundAcc.Mean())
	}
	fmt.Fprintf(out, "worst user: %.2f dB | fairness (Jain on gains): %.3f\n", minAcc.Mean(), fairAcc.Mean())
	fmt.Fprintf(out, "max conditional collision rate: %.3f (gamma = %.2f; collisions per truly-busy slot, eq. (6))\n", collAcc.Mean(), cfg.Gamma)
	if *warmStats && lastResult != nil {
		printWarmStats(out, lastResult.Warm, *dual, lastResult.MeanPSNR)
	}
	if *asJSON && lastResult != nil {
		lastResult.DualTrace = nil // keep the JSON compact
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lastResult); err != nil {
			return err
		}
	}
	return out.Err()
}

// runMetro generates a metro-scale topology, runs the sharded engine for
// each replication, and reports folded quality plus the per-task ns
// accounting that scripts/bench_shard.sh parses (the SHARDSTATS line). The
// PSNR on that line is printed to full precision: the sharded fold is
// bitwise-deterministic for any -shards/-workers setting, and the bench
// harness cross-checks that.
func runMetro(out *safeio.Writer, cfg netmodel.Config, spec netmodel.TopologySpec,
	sch sim.Scheme, seed uint64, runs, gops int, parallel sim.Parallelism, asJSON bool,
	dual, warm, warmStats bool) error {
	if runs < 1 {
		return fmt.Errorf("metro: runs=%d", runs)
	}
	net, err := netmodel.NewNetwork(cfg, spec)
	if err != nil {
		return err
	}
	var lastResult *sim.ShardedResult
	var meanAcc, minAcc, fairAcc, collAcc stats.Running
	for r := 0; r < runs; r++ {
		res, err := sim.RunSharded(net, sim.Options{
			Seed:          seed + uint64(r),
			GOPs:          gops,
			Scheme:        sch,
			Parallel:      parallel,
			UseDualSolver: dual,
			WarmStart:     warm,
			SolveStats:    warmStats,
		})
		if err != nil {
			return fmt.Errorf("run %d (seed %d): %w", r, seed+uint64(r), err)
		}
		if r == 0 {
			largest := 0
			for _, s := range res.PerShard {
				if s.FBSs > largest {
					largest = s.FBSs
				}
			}
			fmt.Fprintf(out, "metro: layout=%s scheme=%s fbs=%d users=%d shards=%d largest-shard=%d edges=%d\n",
				spec.Kind, sch, res.FBSs, res.Users, res.Shards, largest, net.Graph.NumEdges())
			fmt.Fprintf(out, "SHARDSTATS groups=%d workers=%d wall_ns=%d sum_task_ns=%d max_task_ns=%d ideal_speedup=%.3f psnr=%.17g\n",
				res.Groups, parallel.EffectiveWorkers(), res.Timing.WallNS,
				res.Timing.SumTaskNS, res.Timing.MaxTaskNS, res.Timing.IdealSpeedup(), res.MeanPSNR)
			if warmStats {
				printWarmStats(out, res.Warm, dual, res.MeanPSNR)
			}
		}
		meanAcc.Add(res.MeanPSNR)
		minAcc.Add(res.MinUserPSNR)
		fairAcc.Add(res.FairnessIndex)
		collAcc.Add(res.CollisionRate)
		lastResult = res
	}
	fmt.Fprintf(out, "mean Y-PSNR: %.2f dB (stddev %.2f over %d runs)\n", meanAcc.Mean(), meanAcc.StdDev(), runs)
	fmt.Fprintf(out, "worst user: %.2f dB | fairness (Jain on gains): %.3f\n", minAcc.Mean(), fairAcc.Mean())
	fmt.Fprintf(out, "max conditional collision rate: %.3f (gamma = %.2f; worst shard, eq. (6))\n", collAcc.Mean(), cfg.Gamma)
	if asJSON && lastResult != nil {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lastResult); err != nil {
			return err
		}
	}
	return out.Err()
}

// printWarmStats emits the machine-parsed WARMSTATS line that
// scripts/bench_warmstart.sh consumes. The PSNR is printed to full
// precision because the bench gate cross-checks that warm and cold runs
// agree bitwise, mirroring the SHARDSTATS contract.
func printWarmStats(out *safeio.Writer, w *sim.WarmStartReport, dual bool, psnr float64) {
	if w == nil {
		return
	}
	solver := "equilibrium"
	if dual {
		solver = "dual"
	}
	fmt.Fprintf(out, "WARMSTATS mode=%s solver=%s solves=%d warm_solves=%d trivial=%d restarts=%d total_iters=%d mean_iters=%.3f p50=%d p90=%d p99=%d max=%d psnr=%.17g\n",
		w.Mode, solver, w.Stats.Solves, w.Stats.WarmSolves, w.Stats.TrivialSolves, w.Stats.Restarts,
		w.Stats.TotalIters, w.IterMean, w.IterP50, w.IterP90, w.IterP99, w.IterMax, psnr)
}

// runPackets drives the packet-level engine and prints its statistics.
func runPackets(out *safeio.Writer, net *netmodel.Network, sch sim.Scheme, seed uint64, runs, gops, workers int) error {
	results := make([]*packetsim.Result, runs)
	err := experiments.RunGrid(runs, workers, func(r int) error {
		res, err := packetsim.Run(net, packetsim.Options{
			Seed:   seed + uint64(r),
			GOPs:   gops,
			Scheme: sch,
		})
		if err != nil {
			return fmt.Errorf("run %d (seed %d): %w", r, seed+uint64(r), err)
		}
		results[r] = res
		return nil
	})
	if err != nil {
		return err
	}
	var meanAcc stats.Running
	var sent, retrans, dropped, bytes int
	for _, res := range results {
		meanAcc.Add(res.MeanPSNR)
		sent += res.SentPackets
		retrans += res.Retransmissions
		dropped += res.DroppedPackets
		bytes += res.DeliveredBytes
	}
	fmt.Fprintf(out, "packet-level mean Y-PSNR: %.2f dB over %d runs\n", meanAcc.Mean(), runs)
	fmt.Fprintf(out, "fragments sent %d, retransmissions %d, overdue drops %d, delivered %d bytes\n",
		sent, retrans, dropped, bytes)
	return out.Err()
}
