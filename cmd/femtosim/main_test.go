package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSingle(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-scenario", "single", "-runs", "2", "-gops", "2"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"user 1 (Bus)", "user 2 (Mobile)", "user 3 (Harbor)", "mean Y-PSNR", "collision rate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSchemes(t *testing.T) {
	for _, sch := range []string{"proposed", "h1", "h2"} {
		var b strings.Builder
		if err := run([]string{"-scheme", sch, "-gops", "2"}, &b); err != nil {
			t.Fatalf("scheme %s: %v", sch, err)
		}
	}
}

func TestRunInterferingWithBound(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-scenario", "interfering", "-gops", "1", "-bound"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "eq.(23) upper bound") {
		t.Fatalf("missing bound line:\n%s", b.String())
	}
}

func TestRunNonInterfering(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-scenario", "noninterfering", "-gops", "1"}, &b); err != nil {
		t.Fatal(err)
	}
}

func TestRunDualTrace(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-dualtrace", "-gops", "1", "-dualiters", "120"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dual-variable trace") {
		t.Fatalf("missing trace:\n%s", b.String())
	}
}

func TestRunEtaOverride(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-eta", "0.4", "-gops", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "eta=0.400") {
		t.Fatalf("eta not applied:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-scenario", "nope"},
		{"-scheme", "nope"},
		{"-eta", "0.99"}, // infeasible with P10=0.3
	}
	for _, args := range cases {
		var b strings.Builder
		if err := run(args, &b); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-gops", "1", "-json"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	start := strings.Index(out, "{")
	if start < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	var res map[string]any
	if err := json.Unmarshal([]byte(out[start:]), &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"MeanPSNR", "PerUserPSNR", "CollisionRate", "FairnessIndex"} {
		if _, ok := res[key]; !ok {
			t.Fatalf("JSON missing %q", key)
		}
	}
}
