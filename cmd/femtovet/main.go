// Command femtovet runs femtocr's domain-aware static-analysis suite over
// the module and exits nonzero on any finding, so it can gate CI.
//
// Usage:
//
//	femtovet [-only randsource,mapiter] [-list] [dir]
//
// The argument names a directory inside the module (a trailing /... is
// accepted and ignored; the whole module containing it is always loaded so
// cross-package types resolve). Findings print one per line as
// file:line:col: [analyzer] message.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"femtocr/internal/analysis"
	"femtocr/internal/safeio"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	out := safeio.NewWriter(stdout)
	errw := safeio.NewWriter(stderr)
	fs := flag.NewFlagSet("femtovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		if out.Err() != nil {
			return 2
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(errw, "femtovet:", err)
		return 2
	}

	dir := "."
	if fs.NArg() > 0 {
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}
	if fs.NArg() > 1 {
		fmt.Fprintln(errw, "femtovet: at most one directory argument is supported")
		return 2
	}

	mod, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(errw, "femtovet:", err)
		return 2
	}

	diags := analysis.RunAnalyzers(mod, analyzers)
	for _, d := range diags {
		fmt.Fprintln(out, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(out, "femtovet: %d finding(s) in %s (%d packages)\n", len(diags), mod.Path, len(mod.Packages))
	}
	if out.Err() != nil {
		fmt.Fprintln(errw, "femtovet: write:", out.Err())
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analysis.All(), nil
	}
	var selected []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		selected = append(selected, a)
	}
	return selected, nil
}
