// Command femtovet runs femtocr's domain-aware static-analysis suite over
// the module and exits nonzero on any non-baselined finding, so it can gate
// CI.
//
// Usage:
//
//	femtovet [-only randsource,mapiter] [-list] [-json|-sarif] \
//	         [-baseline femtovet.baseline.json] [-write-baseline] [-fix] [dir]
//
// The argument names a directory inside the module (a trailing /... is
// accepted and ignored; the whole module containing it is always loaded so
// cross-package types resolve). Findings print one per line as
// file:line:col: [analyzer] message with module-relative paths; -json emits
// a machine-readable array and -sarif a SARIF 2.1.0 log.
//
// With -baseline, findings recorded in the baseline file are suppressed and
// only new ones are reported (exit 1); -write-baseline instead rewrites the
// baseline to cover every current finding and exits 0. With -fix, findings
// that carry a mechanical rewrite (fading.FromDB/ToDB insertion for
// dB/linear mixes, a sort after map-order appends) are applied to the
// source files through go/format; remaining findings are then reported.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"femtocr/internal/analysis"
	"femtocr/internal/safeio"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// jsonFinding is one entry of the -json output.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Fixable  bool   `json:"fixable,omitempty"`
}

func run(stdout, stderr io.Writer, args []string) int {
	out := safeio.NewWriter(stdout)
	errw := safeio.NewWriter(stderr)
	fs := flag.NewFlagSet("femtovet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	baselinePath := fs.String("baseline", "", "baseline file; recorded findings are suppressed")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file to cover all current findings and exit 0")
	fix := fs.Bool("fix", false, "apply suggested mechanical fixes to the source files")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		if out.Err() != nil {
			return 2
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(errw, "femtovet: -json and -sarif are mutually exclusive")
		return 2
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(errw, "femtovet: -write-baseline requires -baseline")
		return 2
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(errw, "femtovet:", err)
		return 2
	}

	dir := "."
	if fs.NArg() > 0 {
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" {
			dir = "."
		}
	}
	if fs.NArg() > 1 {
		fmt.Fprintln(errw, "femtovet: at most one directory argument is supported")
		return 2
	}

	mod, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(errw, "femtovet:", err)
		return 2
	}

	diags := analysis.RunAnalyzers(mod, analyzers)

	if *fix {
		res, err := analysis.ApplyFixes(mod.Fset, diags)
		if err != nil {
			fmt.Fprintln(errw, "femtovet:", err)
			return 2
		}
		files := make([]string, 0, len(res.Files))
		for file := range res.Files {
			files = append(files, file)
		}
		sort.Strings(files)
		for _, file := range files {
			if err := os.WriteFile(file, res.Files[file], 0o644); err != nil {
				fmt.Fprintln(errw, "femtovet: fix:", err)
				return 2
			}
		}
		if res.Applied > 0 || res.Skipped > 0 {
			fmt.Fprintf(errw, "femtovet: applied %d fix(es) to %d file(s), skipped %d\n",
				res.Applied, len(res.Files), res.Skipped)
		}
		// Re-analyze so the report reflects the rewritten sources.
		mod, err = analysis.LoadModule(dir)
		if err != nil {
			fmt.Fprintln(errw, "femtovet:", err)
			return 2
		}
		diags = analysis.RunAnalyzers(mod, analyzers)
	}

	if *writeBaseline {
		b := analysis.BaselineOf(diags, mod.RelFile)
		data, err := b.Encode()
		if err != nil {
			fmt.Fprintln(errw, "femtovet:", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, data, 0o644); err != nil {
			fmt.Fprintln(errw, "femtovet:", err)
			return 2
		}
		fmt.Fprintf(errw, "femtovet: wrote %s covering %d finding(s)\n", *baselinePath, len(diags))
		return 0
	}

	baselined := 0
	if *baselinePath != "" {
		b, err := analysis.ReadBaselineFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(errw, "femtovet:", err)
			return 2
		}
		if stale := b.Stale(diags, mod.RelFile); stale > 0 {
			fmt.Fprintf(errw, "femtovet: %d baselined finding(s) no longer occur; prune them from %s\n", stale, *baselinePath)
		}
		kept := b.Filter(diags, mod.RelFile)
		baselined = len(diags) - len(kept)
		diags = kept
	}

	switch {
	case *sarifOut:
		data, err := analysis.SARIF(analyzers, diags, mod.RelFile)
		if err != nil {
			fmt.Fprintln(errw, "femtovet:", err)
			return 2
		}
		out.Write(data)
	case *jsonOut:
		findings := []jsonFinding{}
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				Analyzer: d.Analyzer,
				File:     mod.RelFile(d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
				Fixable:  d.Fix != nil,
			})
		}
		data, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			fmt.Fprintln(errw, "femtovet:", err)
			return 2
		}
		out.Write(append(data, '\n'))
	default:
		for _, d := range diags {
			fmt.Fprintf(out, "%s:%d:%d: [%s] %s\n",
				mod.RelFile(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
		if len(diags) > 0 {
			fmt.Fprintf(out, "femtovet: %d finding(s) in %s (%d packages", len(diags), mod.Path, len(mod.Packages))
			if baselined > 0 {
				fmt.Fprintf(out, ", %d baselined", baselined)
			}
			fmt.Fprintln(out, ")")
		}
	}
	if out.Err() != nil {
		fmt.Fprintln(errw, "femtovet: write:", out.Err())
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return analysis.All(), nil
	}
	var selected []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		selected = append(selected, a)
	}
	return selected, nil
}
