package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuiteRunsCleanOnRepo is the CI gate: femtovet over the module must
// exit 0 with no output.
func TestSuiteRunsCleanOnRepo(t *testing.T) {
	var out, errb strings.Builder
	code := run(&out, &errb, []string{"../..."})
	if code != 0 {
		t.Fatalf("femtovet exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Fatalf("expected no findings, got:\n%s", out.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-list"}); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, name := range []string{
		"randsource", "mapiter", "floateq", "probrange", "errdrop",
		"unitcheck", "seedflow", "idxdomain", "hotpath", "poolsafe",
		"aliascheck", "gridslot", "foldorder", "syncguard", "directives",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestJSONCleanTree: -json on the clean module emits an empty array and
// exits 0.
func TestJSONCleanTree(t *testing.T) {
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-json", "../..."}); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errb.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Fatalf("expected no findings, got %v", findings)
	}
}

// TestSARIFCleanTree: -sarif emits a well-formed log with the full rule
// table and empty results.
func TestSARIFCleanTree(t *testing.T) {
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-sarif", "../..."}); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errb.String())
	}
	for _, must := range []string{`"version": "2.1.0"`, `"results": []`, `"id": "seedflow"`} {
		if !strings.Contains(out.String(), must) {
			t.Errorf("-sarif output missing %s", must)
		}
	}
}

// TestBaselineAgainstCheckedIn: the repository's own baseline must load and
// leave the tree clean — and it must be EMPTY, the suite's calibration
// contract.
func TestBaselineAgainstCheckedIn(t *testing.T) {
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-baseline", "../../femtovet.baseline.json", "../..."}); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	data, err := os.ReadFile("../../femtovet.baseline.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	if strings.Contains(string(data), `"analyzer"`) {
		t.Fatalf("checked-in baseline is not empty:\n%s", data)
	}
}

// TestWriteBaseline writes a baseline for the clean tree and verifies it
// round-trips through -baseline.
func TestWriteBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-baseline", path, "-write-baseline", "../..."}); code != 0 {
		t.Fatalf("-write-baseline exit %d\nstderr:\n%s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run(&out, &errb, []string{"-baseline", path, "../..."}); code != 0 {
		t.Fatalf("reusing written baseline: exit %d\nstderr:\n%s", code, errb.String())
	}
}

// TestStaleBaselineWarning: entries whose findings were fixed no longer
// match anything; the driver still exits 0 but tells the operator to prune
// them, so a dead entry cannot silently absorb a future regression with
// the same message.
func TestStaleBaselineWarning(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	stale := `{"version":1,"findings":[{"analyzer":"gridslot","file":"internal/experiments/parallel.go","message":"long-fixed finding","count":2}]}`
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-baseline", path, "../..."}); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "2 baselined finding(s) no longer occur") {
		t.Errorf("stderr missing stale-baseline warning:\n%s", errb.String())
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-json", "-sarif", "../..."},
		{"-write-baseline", "../..."},
		{"-baseline", "no/such/file.json", "../..."},
	}
	for _, args := range cases {
		var out, errb strings.Builder
		if code := run(&out, &errb, args); code != 2 {
			t.Errorf("run(%v) = %d, want 2\nstderr:\n%s", args, code, errb.String())
		}
	}
}

func TestOnlySelectsAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-only", "randsource,floateq", "../..."}); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if code := run(&out, &errb, []string{"-only", "nosuch"}); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
}
