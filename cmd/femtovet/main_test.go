package main

import (
	"strings"
	"testing"
)

// TestSuiteRunsCleanOnRepo is the CI gate: femtovet over the module must
// exit 0 with no output.
func TestSuiteRunsCleanOnRepo(t *testing.T) {
	var out, errb strings.Builder
	code := run(&out, &errb, []string{"../..."})
	if code != 0 {
		t.Fatalf("femtovet exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.String() != "" {
		t.Fatalf("expected no findings, got:\n%s", out.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-list"}); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, name := range []string{"randsource", "mapiter", "floateq", "probrange", "errdrop"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestOnlySelectsAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run(&out, &errb, []string{"-only", "randsource,floateq", "../..."}); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if code := run(&out, &errb, []string{"-only", "nosuch"}); code != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", code)
	}
}
