// Command figures regenerates the paper's evaluation figures and writes
// each as a text table and a CSV file.
//
// Examples:
//
//	figures -fig all -out results            # full paper scale (slow)
//	figures -fig 6a -quick -out results      # one figure at smoke scale
//	figures -fig 3                           # print to stdout only
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"femtocr/internal/experiments"
	"femtocr/internal/profiling"
	"femtocr/internal/safeio"
	"femtocr/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) (retErr error) {
	// Sticky-error writer: report output errors are recorded once and
	// surfaced at the end instead of being dropped per call.
	out := safeio.NewWriter(w)
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		fig     = fs.String("fig", "all", "figure id: all (paper figures) | everything (figures + ablations + extensions) | 3 | 4a | 4b | 4c | 5 | 6a | 6b | 6c | ablation-belief | ablation-sensor | gamma | engines | deadline | capacity | frontier | topology")
		runs    = fs.Int("runs", 10, "independent replications per point")
		gops    = fs.Int("gops", 20, "GOPs per run")
		seed    = fs.Uint64("seed", 1000, "base seed")
		quick   = fs.Bool("quick", false, "smoke scale (2 runs x 3 GOPs)")
		workers = fs.Int("workers", 0, "concurrent simulation runs (0: one per CPU); results are identical for any value")
		dir     = fs.String("out", "", "directory for .txt/.csv output (empty: stdout only)")
		cpuProf = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil && retErr == nil {
			retErr = err
		}
	}()

	p := experiments.Params{Runs: *runs, GOPs: *gops, BaseSeed: *seed}
	if *quick {
		p = experiments.QuickParams()
	}
	p.Parallel.Workers = *workers

	var figures []experiments.Named
	switch strings.ToLower(*fig) {
	case "topology":
		// Solver-level study (no figure object): render the table directly.
		pts, err := experiments.TopologyStudy(*seed, *runs*2, 3, *workers)
		if err != nil {
			return err
		}
		var b strings.Builder
		b.WriteString("Theorem 2 / eq. (23) across interference-graph families\n")
		for _, pt := range pts {
			b.WriteString(pt.String())
			b.WriteByte('\n')
		}
		fmt.Fprintln(out, b.String())
		if *dir != "" {
			if err := os.MkdirAll(*dir, 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(*dir, "topology.txt"), []byte(b.String()), 0o644); err != nil {
				return err
			}
		}
		return out.Err()
	case "all":
		all, err := experiments.All(p)
		if err != nil {
			return err
		}
		figures = all
	case "everything":
		all, err := experiments.All(p)
		if err != nil {
			return err
		}
		figures = all
		extras := []struct {
			id  string
			run func(experiments.Params) (*stats.Figure, error)
		}{
			{"ablation-belief", experiments.AblationBelief},
			{"ablation-sensor", experiments.AblationSensorPolicy},
			{"gamma", experiments.GammaTradeoff},
			{"engines", experiments.EngineComparison},
			{"deadline", experiments.DeadlineSweep},
			{"capacity", func(p experiments.Params) (*stats.Figure, error) {
				return experiments.UserCapacity(p, nil)
			}},
			{"frontier", experiments.SchemeFrontier},
		}
		for _, e := range extras {
			f, err := e.run(p)
			if err != nil {
				return fmt.Errorf("%s: %w", e.id, err)
			}
			figures = append(figures, experiments.Named{ID: e.id, Figure: f})
		}
	case "3":
		f, err := experiments.Fig3(p)
		if err != nil {
			return err
		}
		figures = append(figures, experiments.Named{ID: "fig3", Figure: f})
	case "4a":
		f, _, err := experiments.Fig4a(p, 600, 25)
		if err != nil {
			return err
		}
		figures = append(figures, experiments.Named{ID: "fig4a", Figure: f})
	case "4b", "4c", "5", "6a", "6b", "6c", "ablation-belief", "ablation-sensor", "gamma", "engines", "deadline", "capacity", "frontier":
		runners := map[string]func(experiments.Params) (*stats.Figure, error){
			"4b":              experiments.Fig4b,
			"4c":              experiments.Fig4c,
			"5":               experiments.Fig5,
			"6a":              experiments.Fig6a,
			"6b":              experiments.Fig6b,
			"6c":              experiments.Fig6c,
			"ablation-belief": experiments.AblationBelief,
			"ablation-sensor": experiments.AblationSensorPolicy,
			"gamma":           experiments.GammaTradeoff,
			"engines":         experiments.EngineComparison,
			"deadline":        experiments.DeadlineSweep,
			"capacity": func(p experiments.Params) (*stats.Figure, error) {
				return experiments.UserCapacity(p, nil)
			},
			"frontier": experiments.SchemeFrontier,
		}
		id := strings.ToLower(*fig)
		f, err := runners[id](p)
		if err != nil {
			return err
		}
		prefix := "fig"
		if strings.Contains(id, "-") || id == "gamma" || id == "engines" || id == "deadline" || id == "capacity" || id == "frontier" {
			prefix = ""
		}
		figures = append(figures, experiments.Named{ID: prefix + id, Figure: f})
	default:
		return fmt.Errorf("unknown figure %q", *fig)
	}

	for _, nf := range figures {
		fmt.Fprintln(out, nf.Figure.Render())
		if *dir != "" {
			if err := os.MkdirAll(*dir, 0o755); err != nil {
				return err
			}
			txt := filepath.Join(*dir, nf.ID+".txt")
			if err := os.WriteFile(txt, []byte(nf.Figure.Render()), 0o644); err != nil {
				return err
			}
			csv := filepath.Join(*dir, nf.ID+".csv")
			if err := os.WriteFile(csv, []byte(nf.Figure.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s and %s\n\n", txt, csv)
		}
	}
	return out.Err()
}
