package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigureToStdout(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "3", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Fig. 3") {
		t.Fatalf("missing figure title:\n%s", b.String())
	}
}

func TestRunFigureWritesFiles(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-fig", "4b", "-quick", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig4b.txt", "fig4b.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", name)
		}
	}
	csv, _ := os.ReadFile(filepath.Join(dir, "fig4b.csv"))
	if !strings.Contains(string(csv), "Proposed_mean") {
		t.Fatalf("csv missing header:\n%s", csv)
	}
}

func TestRunFig4a(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "4a", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "lambda_0") {
		t.Fatalf("missing dual curves:\n%s", b.String())
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "99"}, &b); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunTopologyTable(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-fig", "topology", "-runs", "2", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Theorem 2", "path (Fig. 5)", "Dmax=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	if _, err := os.ReadFile(filepath.Join(dir, "topology.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestRunEnginesFigure(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "engines", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Packet-level engine") {
		t.Fatalf("missing engines curve:\n%s", b.String())
	}
}

func TestRunEverythingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	dir := t.TempDir()
	var b strings.Builder
	if err := run([]string{"-fig", "everything", "-quick", "-out", dir}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3.txt", "gamma.txt", "capacity.txt", "engines.txt"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("%s missing: %v", want, err)
		}
	}
}
