package femtocr

import (
	"math"
	"reflect"
	"testing"
)

func TestFacadePacketSimulation(t *testing.T) {
	net, err := SingleFBSNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulatePackets(net, PacketOptions{Seed: 1, GOPs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPSNR < 25 || res.MeanPSNR > 45 {
		t.Fatalf("packet-level PSNR %v implausible", res.MeanPSNR)
	}
	if res.DeliveredBytes == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestEnginesAgree: the rate-based and packet-level engines are two views
// of the same system and must agree within a couple of dB.
func TestEnginesAgree(t *testing.T) {
	net, err := SingleFBSNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var rate, pkt float64
	const runs = 4
	for seed := uint64(1); seed <= runs; seed++ {
		a, err := Simulate(net, SimOptions{Seed: seed, GOPs: 8})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SimulatePackets(net, PacketOptions{Seed: seed, GOPs: 8})
		if err != nil {
			t.Fatal(err)
		}
		rate += a.MeanPSNR
		pkt += b.MeanPSNR
	}
	if gap := math.Abs(rate-pkt) / runs; gap > 2.5 {
		t.Fatalf("engines diverge: rate-based %v vs packet %v", rate/runs, pkt/runs)
	}
}

func TestFacadeAblations(t *testing.T) {
	p := QuickScale()
	p.GOPs = 2
	fig, err := AblationSensorPolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) == 0 {
		t.Fatal("empty ablation figure")
	}
	cmp, err := AblationSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.String() == "" {
		t.Fatal("empty comparison")
	}
}

func TestFacadeBeliefAblation(t *testing.T) {
	p := QuickScale()
	p.GOPs = 2
	fig, err := AblationBelief(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) == 0 {
		t.Fatal("empty belief-ablation figure")
	}
}

func TestFacadeGammaTradeoff(t *testing.T) {
	p := QuickScale()
	p.GOPs = 2
	fig, err := GammaTradeoff(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) == 0 {
		t.Fatal("empty gamma-tradeoff figure")
	}
	for _, c := range fig.Curves {
		if len(c.X) == 0 {
			t.Fatalf("curve %q has no points", c.Name)
		}
	}
}

func TestFacadeEngineComparison(t *testing.T) {
	p := QuickScale()
	p.GOPs = 2
	fig, err := EngineComparison(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) == 0 {
		t.Fatal("empty engine-comparison figure")
	}
}

func TestFacadeUserCapacity(t *testing.T) {
	p := QuickScale()
	p.GOPs = 2
	fig, err := UserCapacity(p, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) == 0 {
		t.Fatal("empty user-capacity figure")
	}
	for _, c := range fig.Curves {
		if len(c.X) != 2 {
			t.Fatalf("curve %q has %d points, want 2", c.Name, len(c.X))
		}
	}
}

// TestSimulateDeterminism is the determinism regression the femtovet suite
// exists to protect: two runs with the same seed must produce structurally
// identical results, bit for bit.
func TestSimulateDeterminism(t *testing.T) {
	net, err := SingleFBSNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opts := SimOptions{Seed: 42, GOPs: 4, TrackBound: false}
	a, err := Simulate(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\nfirst:  %+v\nsecond: %+v", a, b)
	}

	pa, err := SimulatePackets(net, PacketOptions{Seed: 42, GOPs: 3})
	if err != nil {
		t.Fatal(err)
	}
	pb, err := SimulatePackets(net, PacketOptions{Seed: 42, GOPs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pa, pb) {
		t.Fatalf("packet engine: same seed, different results:\nfirst:  %+v\nsecond: %+v", pa, pb)
	}
}

func TestFacadeScalability(t *testing.T) {
	p := QuickScale()
	p.GOPs = 1
	p.Runs = 1
	pts, err := Scalability(p, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Users != 6 {
		t.Fatalf("points = %+v", pts)
	}
}
