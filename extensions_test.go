package femtocr

import (
	"math"
	"testing"
)

func TestFacadePacketSimulation(t *testing.T) {
	net, err := SingleFBSNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulatePackets(net, PacketOptions{Seed: 1, GOPs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPSNR < 25 || res.MeanPSNR > 45 {
		t.Fatalf("packet-level PSNR %v implausible", res.MeanPSNR)
	}
	if res.DeliveredBytes == 0 {
		t.Fatal("nothing delivered")
	}
}

// TestEnginesAgree: the rate-based and packet-level engines are two views
// of the same system and must agree within a couple of dB.
func TestEnginesAgree(t *testing.T) {
	net, err := SingleFBSNetwork(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var rate, pkt float64
	const runs = 4
	for seed := uint64(1); seed <= runs; seed++ {
		a, err := Simulate(net, SimOptions{Seed: seed, GOPs: 8})
		if err != nil {
			t.Fatal(err)
		}
		b, err := SimulatePackets(net, PacketOptions{Seed: seed, GOPs: 8})
		if err != nil {
			t.Fatal(err)
		}
		rate += a.MeanPSNR
		pkt += b.MeanPSNR
	}
	if gap := math.Abs(rate-pkt) / runs; gap > 2.5 {
		t.Fatalf("engines diverge: rate-based %v vs packet %v", rate/runs, pkt/runs)
	}
}

func TestFacadeAblations(t *testing.T) {
	p := QuickScale()
	p.GOPs = 2
	fig, err := AblationSensorPolicy(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) == 0 {
		t.Fatal("empty ablation figure")
	}
	cmp, err := AblationSolver(p)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.String() == "" {
		t.Fatal("empty comparison")
	}
}

func TestFacadeScalability(t *testing.T) {
	p := QuickScale()
	p.GOPs = 1
	p.Runs = 1
	pts, err := Scalability(p, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Users != 6 {
		t.Fatalf("points = %+v", pts)
	}
}
