package femtocr_test

import (
	"fmt"

	"femtocr"
)

// Build the paper's single-FBS scenario and stream twenty GOPs under the
// proposed allocation, checking the primary-user protection held.
func Example() {
	cfg := femtocr.DefaultConfig()
	net, err := femtocr.SingleFBSNetwork(cfg)
	if err != nil {
		panic(err)
	}
	res, err := femtocr.Simulate(net, femtocr.SimOptions{Seed: 42, GOPs: 20})
	if err != nil {
		panic(err)
	}
	fmt.Printf("users: %d, GOPs: %d\n", net.K(), res.GOPs)
	fmt.Printf("quality above base layer: %v\n", res.MeanPSNR > 29)
	fmt.Printf("collision rate within 2x gamma: %v\n", res.CollisionRate < 2*cfg.Gamma)
	// Output:
	// users: 3, GOPs: 20
	// quality above base layer: true
	// collision rate within 2x gamma: true
}

// Compare the three schemes of the paper's evaluation on one seed.
func Example_schemes() {
	net, err := femtocr.SingleFBSNetwork(femtocr.DefaultConfig())
	if err != nil {
		panic(err)
	}
	type row struct {
		name string
		sch  femtocr.Scheme
	}
	rows := []row{
		{"Proposed", femtocr.Proposed},
		{"Heuristic 1", femtocr.Heuristic1},
		{"Heuristic 2", femtocr.Heuristic2},
	}
	var best string
	bestPSNR := 0.0
	for _, r := range rows {
		res, err := femtocr.Simulate(net, femtocr.SimOptions{Seed: 7, GOPs: 20, Scheme: r.sch})
		if err != nil {
			panic(err)
		}
		if res.MeanPSNR > bestPSNR {
			bestPSNR = res.MeanPSNR
			best = r.name
		}
	}
	fmt.Printf("best scheme: %s\n", best)
	// Output:
	// best scheme: Proposed
}
