package femtocr

// Benchmarks regenerating every figure of the paper's evaluation (§V).
// Each benchmark runs its experiment at a reduced-but-meaningful scale
// (3 runs x 5 GOPs per point; the paper uses 10 x 20 — use cmd/figures for
// the full scale) and reports the figure's headline numbers as custom
// metrics so `go test -bench .` doubles as a reproduction report:
//
//	proposed_dB     mean quality of the proposed scheme (averaged over x)
//	h1_gain_dB      proposed minus Heuristic 1
//	h2_gain_dB      proposed minus Heuristic 2
//	bound_gap_dB    eq. (23) upper bound minus proposed (where plotted)

import (
	"testing"

	"femtocr/internal/experiments"
	"femtocr/internal/stats"
)

// benchScale is the per-figure benchmark budget.
func benchScale() experiments.Params {
	p := experiments.PaperParams()
	p.Runs = 3
	p.GOPs = 5
	return p
}

// curveMean averages a curve's point means.
func curveMean(fig *stats.Figure, name string) float64 {
	c := fig.Curve(name)
	if c == nil || c.Len() == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < c.Len(); i++ {
		_, p := c.At(i)
		sum += p.Mean
	}
	return sum / float64(c.Len())
}

// reportSchemes attaches the standard metrics to a figure benchmark.
func reportSchemes(b *testing.B, fig *stats.Figure) {
	b.Helper()
	prop := curveMean(fig, "Proposed")
	b.ReportMetric(prop, "proposed_dB")
	if h1 := curveMean(fig, "Heuristic 1"); h1 != 0 {
		b.ReportMetric(prop-h1, "h1_gain_dB")
	}
	if h2 := curveMean(fig, "Heuristic 2"); h2 != 0 {
		b.ReportMetric(prop-h2, "h2_gain_dB")
	}
	if ub := curveMean(fig, "Upper bound"); ub != 0 {
		b.ReportMetric(ub-prop, "bound_gap_dB")
	}
}

// BenchmarkFig3 regenerates Fig. 3: single-FBS per-user video quality under
// the three schemes.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig3(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSchemes(b, fig)
		}
	}
}

// BenchmarkFig4a regenerates Fig. 4(a): convergence of the dual variables
// over the distributed algorithm's iterations.
func BenchmarkFig4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, trace, err := experiments.Fig4a(benchScale(), 600, 25)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := trace[len(trace)-1]
			b.ReportMetric(last[0], "lambda0_final")
			b.ReportMetric(last[1], "lambda1_final")
			b.ReportMetric(float64(len(trace)), "iterations")
		}
	}
}

// BenchmarkFig4b regenerates Fig. 4(b): quality vs number of channels M.
func BenchmarkFig4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig4b(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSchemes(b, fig)
			// The paper's claim: the proposed curve has the steepest slope.
			c := fig.Curve("Proposed")
			_, lo := c.At(0)
			_, hi := c.At(c.Len() - 1)
			b.ReportMetric(hi.Mean-lo.Mean, "slope_dB")
		}
	}
}

// BenchmarkFig4c regenerates Fig. 4(c): quality vs channel utilization.
func BenchmarkFig4c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig4c(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSchemes(b, fig)
			c := fig.Curve("Proposed")
			_, lo := c.At(0)
			_, hi := c.At(c.Len() - 1)
			b.ReportMetric(lo.Mean-hi.Mean, "eta_drop_dB")
		}
	}
}

// BenchmarkFig6a regenerates Fig. 6(a): interfering FBSs, quality vs
// utilization, with the eq. (23) upper bound.
func BenchmarkFig6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig6a(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSchemes(b, fig)
		}
	}
}

// BenchmarkFig6b regenerates Fig. 6(b): quality vs the five sensing-error
// operating points.
func BenchmarkFig6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig6b(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSchemes(b, fig)
			// Dynamic range across operating points (the paper: small).
			c := fig.Curve("Proposed")
			lo, hi := 1e9, -1e9
			for j := 0; j < c.Len(); j++ {
				_, p := c.At(j)
				if p.Mean < lo {
					lo = p.Mean
				}
				if p.Mean > hi {
					hi = p.Mean
				}
			}
			b.ReportMetric(hi-lo, "range_dB")
		}
	}
}

// BenchmarkFig6c regenerates Fig. 6(c): quality vs common-channel
// bandwidth B0, demonstrating diminishing returns.
func BenchmarkFig6c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig6c(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSchemes(b, fig)
			// Diminishing returns: early gain vs late gain along B0.
			c := fig.Curve("Proposed")
			_, p0 := c.At(0)
			_, p2 := c.At(2)
			_, p4 := c.At(c.Len() - 1)
			b.ReportMetric(p2.Mean-p0.Mean, "early_gain_dB")
			b.ReportMetric(p4.Mean-p2.Mean, "late_gain_dB")
		}
	}
}
