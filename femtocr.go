// Package femtocr is a Go implementation of "Resource Allocation for Medium
// Grain Scalable Videos over Femtocell Cognitive Radio Networks" (Hu & Mao,
// ICDCS 2011).
//
// It provides the paper's full stack: two-state Markov channel occupancy,
// spectrum sensing with false alarms and miss detections, Bayesian fusion of
// sensing results, collision-bounded opportunistic access, block-fading
// links, an MGS video quality model, the optimum-achieving distributed
// resource allocation of Tables I/II, the greedy channel allocation of
// Table III with its Theorem 2 and eq. (23) bounds, the two heuristic
// baselines, and a slot-level simulator plus experiment drivers that
// regenerate every figure of the paper's evaluation.
//
// Quick start:
//
//	net, err := femtocr.NewNetwork(femtocr.DefaultConfig(), femtocr.PaperSingleSpec())
//	if err != nil { ... }
//	res, err := femtocr.Simulate(net, femtocr.SimOptions{Seed: 1, GOPs: 20})
//	fmt.Println(res.MeanPSNR)
//
// Metro scale: generated city topologies decompose into independent
// interference shards and run on the sharded engine:
//
//	net, err := femtocr.NewNetwork(femtocr.DefaultConfig(), femtocr.MetroPoissonSpec(10000, 100))
//	res, err := femtocr.SimulateSharded(net, femtocr.SimOptions{
//		Seed: 1, GOPs: 1, Parallel: femtocr.Parallelism{Workers: 8},
//	})
//
// The deeper building blocks (solvers, sensing fusion, fading models) live
// in the internal packages and are exercised through this facade and the
// binaries under cmd/.
package femtocr

import (
	"femtocr/internal/experiments"
	"femtocr/internal/netmodel"
	"femtocr/internal/par"
	"femtocr/internal/sim"
	"femtocr/internal/stats"
	"femtocr/internal/video"
)

// Config is a scenario configuration (channel counts, Markov occupancy,
// sensing errors, radio calibration). See DefaultConfig for the paper's §V
// values.
type Config = netmodel.Config

// Network is a fully built femtocell CR network.
type Network = netmodel.Network

// SimOptions configures one simulation run.
type SimOptions = sim.Options

// SimResult is the outcome of one run.
type SimResult = sim.Result

// Scheme selects a resource-allocation scheme.
type Scheme = sim.Scheme

// The three schemes of the paper's evaluation, plus the blind TDMA
// baseline added as an extension anchor.
const (
	Proposed   = sim.Proposed
	Heuristic1 = sim.Heuristic1
	Heuristic2 = sim.Heuristic2
	RoundRobin = sim.RoundRobin
	// MaxThroughput maximizes the quality sum with no fairness concern.
	MaxThroughput = sim.MaxThroughput
)

// ExperimentParams scales an experiment (runs, GOPs, seed).
type ExperimentParams = experiments.Params

// Parallelism is the unified parallel-execution knob bundle shared by
// SimOptions (SimulateSharded) and ExperimentParams: Workers caps
// concurrent tasks (0: one per CPU) and Shards groups interference
// components into grid tasks (0: one per component). Both only change the
// schedule — results are bitwise-identical for any setting.
type Parallelism = par.Parallelism

// TopologySpec declares a deployment layout for NewNetwork: the paper's
// single-FBS and Fig. 5 scenarios, disjoint-coverage lines, or generated
// metro-scale grids and Poisson scatters.
type TopologySpec = netmodel.TopologySpec

// TopologyKind selects a TopologySpec layout.
type TopologyKind = netmodel.TopologyKind

// The deployment layouts NewNetwork understands.
const (
	// TopologySingle is the paper's single-FBS scenario (§V-A).
	TopologySingle = netmodel.KindSingle
	// TopologyNonInterferingLine spaces FBSs 4R apart: an edgeless
	// interference graph (Table II).
	TopologyNonInterferingLine = netmodel.KindNonInterferingLine
	// TopologyInterferingPath spaces FBSs 1.5R apart: the Fig. 5 path.
	TopologyInterferingPath = netmodel.KindInterferingPath
	// TopologyMetroGrid tiles city blocks of interfering FBSs separated by
	// streets; the interference graph decomposes into one path per block.
	TopologyMetroGrid = netmodel.KindMetroGrid
	// TopologyMetroPoisson scatters FBSs uniformly over an area; clusters
	// emerge from the spatial density.
	TopologyMetroPoisson = netmodel.KindMetroPoisson
)

// ShardedResult aggregates a SimulateSharded run: quality fields folded
// deterministically across interference shards, per-shard summaries, and
// per-task ns accounting.
type ShardedResult = sim.ShardedResult

// ShardSummary is one shard's fixed-size reduction inside a ShardedResult.
type ShardSummary = sim.ShardSummary

// Figure is a rendered experiment result: one curve per scheme with 95%
// confidence intervals, with text-table and CSV output.
type Figure = stats.Figure

// Sequence is an MGS video description with its rate-quality model.
type Sequence = video.Sequence

// DefaultConfig returns the paper's §V parameters.
func DefaultConfig() Config { return netmodel.DefaultConfig() }

// Sequences returns the built-in CIF sequence presets (Bus, Mobile, Harbor,
// Foreman, Crew, City).
func Sequences() []Sequence { return video.StandardSequences() }

// SequenceByName looks up a preset video sequence.
func SequenceByName(name string) (Sequence, error) { return video.SequenceByName(name) }

// NewNetwork assembles a network from a configuration and a topology
// specification — the single entry point behind every deployment scenario,
// from the paper's three-user single cell to a generated 10k-FBS metro.
// Use the *Spec helpers (PaperSingleSpec, PaperInterferingSpec,
// NonInterferingSpec, MetroGridSpec, MetroPoissonSpec) for common layouts.
func NewNetwork(cfg Config, spec TopologySpec) (*Network, error) {
	return netmodel.NewNetwork(cfg, spec)
}

// SingleSpec declares a single-FBS layout streaming the given sequences.
func SingleSpec(videos []Sequence) TopologySpec { return netmodel.SingleSpec(videos) }

// PaperSingleSpec declares the exact §V-A scenario: one FBS streaming Bus,
// Mobile and Harbor to three users.
func PaperSingleSpec() TopologySpec { return netmodel.PaperSingleSpec() }

// NonInterferingSpec declares disjoint-coverage femtocells, one video group
// per FBS.
func NonInterferingSpec(videosPerFBS [][]Sequence) TopologySpec {
	return netmodel.NonInterferingSpec(videosPerFBS)
}

// InterferingPathSpec declares the §V-B path layout, one video group per
// FBS.
func InterferingPathSpec(videosPerFBS [][]Sequence) TopologySpec {
	return netmodel.InterferingPathSpec(videosPerFBS)
}

// PaperInterferingSpec declares the exact §V-B scenario: three FBSs on the
// Fig. 5 path, each streaming the Bus/Mobile/Harbor trio.
func PaperInterferingSpec() TopologySpec { return netmodel.PaperInterferingSpec() }

// MetroGridSpec declares a rows x cols city-block grid (three interfering
// FBSs per block by default) with usersPerFBS generated streams per cell
// (0: three, the paper's load).
func MetroGridSpec(rows, cols, usersPerFBS int) TopologySpec {
	return netmodel.MetroGridSpec(rows, cols, usersPerFBS)
}

// MetroPoissonSpec declares fbss femtocells scattered uniformly over an
// automatically sized urban area with usersPerFBS generated streams per
// cell (0: three, the paper's load).
func MetroPoissonSpec(fbss, usersPerFBS int) TopologySpec {
	return netmodel.MetroPoissonSpec(fbss, usersPerFBS)
}

// SingleFBSNetwork builds the paper's single-FBS scenario streaming Bus,
// Mobile and Harbor to three users.
//
// Deprecated: use NewNetwork(cfg, PaperSingleSpec()).
func SingleFBSNetwork(cfg Config) (*Network, error) {
	return NewNetwork(cfg, PaperSingleSpec())
}

// CustomSingleFBSNetwork builds a single-FBS scenario with one user per
// provided video sequence.
//
// Deprecated: use NewNetwork(cfg, SingleSpec(videos)).
func CustomSingleFBSNetwork(cfg Config, videos []Sequence) (*Network, error) {
	return NewNetwork(cfg, SingleSpec(videos))
}

// InterferingNetwork builds the paper's §V-B scenario: three FBSs on the
// Fig. 5 path graph, three users each.
//
// Deprecated: use NewNetwork(cfg, PaperInterferingSpec()).
func InterferingNetwork(cfg Config) (*Network, error) {
	return NewNetwork(cfg, PaperInterferingSpec())
}

// NonInterferingNetwork builds N femtocells with disjoint coverage, one
// group of users per femtocell.
//
// Deprecated: use NewNetwork(cfg, NonInterferingSpec(videosPerFBS)).
func NonInterferingNetwork(cfg Config, videosPerFBS [][]Sequence) (*Network, error) {
	return NewNetwork(cfg, NonInterferingSpec(videosPerFBS))
}

// Simulate runs one simulation.
func Simulate(net *Network, opts SimOptions) (*SimResult, error) { return sim.Run(net, opts) }

// SimulateSharded runs the network through the sharded engine: each
// connected component of the interference graph simulates independently on
// the worker pool (opts.Parallel) and the per-shard summaries fold
// deterministically in ascending component order. On a connected network
// the result matches Simulate bit for bit; on a generated metro it scales
// to millions of users with O(shards) result memory.
func SimulateSharded(net *Network, opts SimOptions) (*ShardedResult, error) {
	return sim.RunSharded(net, opts)
}

// PaperScale returns the paper's experiment scale (10 runs, 20 GOPs).
func PaperScale() ExperimentParams { return experiments.PaperParams() }

// QuickScale returns a reduced experiment scale for smoke runs.
func QuickScale() ExperimentParams { return experiments.QuickParams() }

// Figure3 regenerates Fig. 3 (single FBS, per-user quality).
func Figure3(p ExperimentParams) (*Figure, error) { return experiments.Fig3(p) }

// Figure4a regenerates Fig. 4(a) (dual-variable convergence); it returns
// the figure and the raw iteration trace.
func Figure4a(p ExperimentParams, iterations, stride int) (*Figure, [][]float64, error) {
	return experiments.Fig4a(p, iterations, stride)
}

// Figure4b regenerates Fig. 4(b) (quality vs number of channels).
func Figure4b(p ExperimentParams) (*Figure, error) { return experiments.Fig4b(p) }

// Figure4c regenerates Fig. 4(c) (quality vs channel utilization).
func Figure4c(p ExperimentParams) (*Figure, error) { return experiments.Fig4c(p) }

// Figure5 reports per-user quality on the interfering Fig. 5 topology
// (three FBSs, nine users), the multi-cell analogue of Figure3.
func Figure5(p ExperimentParams) (*Figure, error) { return experiments.Fig5(p) }

// Figure6a regenerates Fig. 6(a) (interfering FBSs, quality vs utilization,
// with the eq. (23) upper bound).
func Figure6a(p ExperimentParams) (*Figure, error) { return experiments.Fig6a(p) }

// Figure6b regenerates Fig. 6(b) (quality vs sensing-error operating
// points).
func Figure6b(p ExperimentParams) (*Figure, error) { return experiments.Fig6b(p) }

// Figure6c regenerates Fig. 6(c) (quality vs common-channel bandwidth).
func Figure6c(p ExperimentParams) (*Figure, error) { return experiments.Fig6c(p) }

// AllFigures regenerates every figure at the given scale.
func AllFigures(p ExperimentParams) ([]experiments.Named, error) { return experiments.All(p) }
