// Package femtocr is a Go implementation of "Resource Allocation for Medium
// Grain Scalable Videos over Femtocell Cognitive Radio Networks" (Hu & Mao,
// ICDCS 2011).
//
// It provides the paper's full stack: two-state Markov channel occupancy,
// spectrum sensing with false alarms and miss detections, Bayesian fusion of
// sensing results, collision-bounded opportunistic access, block-fading
// links, an MGS video quality model, the optimum-achieving distributed
// resource allocation of Tables I/II, the greedy channel allocation of
// Table III with its Theorem 2 and eq. (23) bounds, the two heuristic
// baselines, and a slot-level simulator plus experiment drivers that
// regenerate every figure of the paper's evaluation.
//
// Quick start:
//
//	net, err := femtocr.SingleFBSNetwork(femtocr.DefaultConfig())
//	if err != nil { ... }
//	res, err := femtocr.Simulate(net, femtocr.SimOptions{Seed: 1, GOPs: 20})
//	fmt.Println(res.MeanPSNR)
//
// The deeper building blocks (solvers, sensing fusion, fading models) live
// in the internal packages and are exercised through this facade and the
// binaries under cmd/.
package femtocr

import (
	"femtocr/internal/experiments"
	"femtocr/internal/netmodel"
	"femtocr/internal/sim"
	"femtocr/internal/stats"
	"femtocr/internal/video"
)

// Config is a scenario configuration (channel counts, Markov occupancy,
// sensing errors, radio calibration). See DefaultConfig for the paper's §V
// values.
type Config = netmodel.Config

// Network is a fully built femtocell CR network.
type Network = netmodel.Network

// SimOptions configures one simulation run.
type SimOptions = sim.Options

// SimResult is the outcome of one run.
type SimResult = sim.Result

// Scheme selects a resource-allocation scheme.
type Scheme = sim.Scheme

// The three schemes of the paper's evaluation, plus the blind TDMA
// baseline added as an extension anchor.
const (
	Proposed   = sim.Proposed
	Heuristic1 = sim.Heuristic1
	Heuristic2 = sim.Heuristic2
	RoundRobin = sim.RoundRobin
	// MaxThroughput maximizes the quality sum with no fairness concern.
	MaxThroughput = sim.MaxThroughput
)

// ExperimentParams scales an experiment (runs, GOPs, seed).
type ExperimentParams = experiments.Params

// Figure is a rendered experiment result: one curve per scheme with 95%
// confidence intervals, with text-table and CSV output.
type Figure = stats.Figure

// Sequence is an MGS video description with its rate-quality model.
type Sequence = video.Sequence

// DefaultConfig returns the paper's §V parameters.
func DefaultConfig() Config { return netmodel.DefaultConfig() }

// Sequences returns the built-in CIF sequence presets (Bus, Mobile, Harbor,
// Foreman, Crew, City).
func Sequences() []Sequence { return video.StandardSequences() }

// SequenceByName looks up a preset video sequence.
func SequenceByName(name string) (Sequence, error) { return video.SequenceByName(name) }

// SingleFBSNetwork builds the paper's single-FBS scenario streaming Bus,
// Mobile and Harbor to three users.
func SingleFBSNetwork(cfg Config) (*Network, error) { return netmodel.PaperSingleFBS(cfg) }

// CustomSingleFBSNetwork builds a single-FBS scenario with one user per
// provided video sequence.
func CustomSingleFBSNetwork(cfg Config, videos []Sequence) (*Network, error) {
	return netmodel.SingleFBS(cfg, videos)
}

// InterferingNetwork builds the paper's §V-B scenario: three FBSs on the
// Fig. 5 path graph, three users each.
func InterferingNetwork(cfg Config) (*Network, error) { return netmodel.PaperInterfering(cfg) }

// NonInterferingNetwork builds N femtocells with disjoint coverage, one
// group of users per femtocell.
func NonInterferingNetwork(cfg Config, videosPerFBS [][]Sequence) (*Network, error) {
	return netmodel.NonInterfering(cfg, videosPerFBS)
}

// Simulate runs one simulation.
func Simulate(net *Network, opts SimOptions) (*SimResult, error) { return sim.Run(net, opts) }

// PaperScale returns the paper's experiment scale (10 runs, 20 GOPs).
func PaperScale() ExperimentParams { return experiments.PaperParams() }

// QuickScale returns a reduced experiment scale for smoke runs.
func QuickScale() ExperimentParams { return experiments.QuickParams() }

// Figure3 regenerates Fig. 3 (single FBS, per-user quality).
func Figure3(p ExperimentParams) (*Figure, error) { return experiments.Fig3(p) }

// Figure4a regenerates Fig. 4(a) (dual-variable convergence); it returns
// the figure and the raw iteration trace.
func Figure4a(p ExperimentParams, iterations, stride int) (*Figure, [][]float64, error) {
	return experiments.Fig4a(p, iterations, stride)
}

// Figure4b regenerates Fig. 4(b) (quality vs number of channels).
func Figure4b(p ExperimentParams) (*Figure, error) { return experiments.Fig4b(p) }

// Figure4c regenerates Fig. 4(c) (quality vs channel utilization).
func Figure4c(p ExperimentParams) (*Figure, error) { return experiments.Fig4c(p) }

// Figure5 reports per-user quality on the interfering Fig. 5 topology
// (three FBSs, nine users), the multi-cell analogue of Figure3.
func Figure5(p ExperimentParams) (*Figure, error) { return experiments.Fig5(p) }

// Figure6a regenerates Fig. 6(a) (interfering FBSs, quality vs utilization,
// with the eq. (23) upper bound).
func Figure6a(p ExperimentParams) (*Figure, error) { return experiments.Fig6a(p) }

// Figure6b regenerates Fig. 6(b) (quality vs sensing-error operating
// points).
func Figure6b(p ExperimentParams) (*Figure, error) { return experiments.Fig6b(p) }

// Figure6c regenerates Fig. 6(c) (quality vs common-channel bandwidth).
func Figure6c(p ExperimentParams) (*Figure, error) { return experiments.Fig6c(p) }

// AllFigures regenerates every figure at the given scale.
func AllFigures(p ExperimentParams) ([]experiments.Named, error) { return experiments.All(p) }
