module femtocr

go 1.22
